// Package paperexample builds the bibliographic information network of
// Figure 1 in "Boosting SimRank with Semantics" together with the Table 1
// IC values and the Lin scores quoted in Examples 2.2 and 3.2, so the
// worked example can be reproduced by tests and by the runnable
// examples/bibliographic program.
//
// Edge directions follow the similarity-propagation convention of the
// paper's Section 3 ("assume that all edges in G have been reversed"): the
// iterative formulas aggregate over in-neighbors, so an author's
// in-neighborhood here is {co-author, Author category, field, country} and
// a concept's in-neighborhood is its taxonomy parents. This reconstruction
// is pinned down by the published SimRank values of Example 2.2
// (R1 = 0.1 for both pairs; R2 = 0.12 for John/Aditi and 0.16 for
// Bo/Aditi), which the test suite checks exactly.
package paperexample

import (
	"semsim/internal/hin"
	"semsim/internal/semantic"
	"semsim/internal/taxonomy"
)

// Network bundles the Figure 1 graph with its taxonomy and the Lin measure
// (with the published Example 2.2 / 3.2 values overriding pairs whose ICs
// came from the authors' full AMiner ontology).
type Network struct {
	Graph *hin.Graph
	Tax   *taxonomy.Taxonomy
	Lin   semantic.Measure
}

// Build constructs the network. Co-author edges carry weight 2 ("all three
// collaborated with Paul twice"); every other weight is the default 1.
func Build() (*Network, error) {
	b := hin.NewBuilder()

	// Authors.
	aditi := b.AddNode("Aditi", "author")
	bo := b.AddNode("Bo", "author")
	john := b.AddNode("John", "author")
	paul := b.AddNode("Paul", "author")

	// Fields of interest (pink taxonomy nodes). CrowdMining is a
	// hyponym of both Crowdsourcing and DataMining ("Crowd Mining"),
	// which is what lets Bo and Aditi share the DataMining field.
	field := b.AddNode("Field", "category")
	dataMining := b.AddNode("DataMining", "category")
	webDM := b.AddNode("WebDataMining", "category")
	crowd := b.AddNode("Crowdsourcing", "category")
	spatialCS := b.AddNode("SpatialCrowdsourcing", "category")
	crowdMining := b.AddNode("CrowdMining", "category")

	// Geography.
	country := b.AddNode("Country", "category")
	asia := b.AddNode("CountryInAsia", "category")
	america := b.AddNode("CountryInAmerica", "category")
	india := b.AddNode("India", "country")
	china := b.AddNode("China", "country")
	usa := b.AddNode("USA", "country")

	// Author category.
	author := b.AddNode("Author", "category")

	// Collaborations (symmetric): weight 2 = number of joint papers.
	b.AddUndirected(aditi, paul, "co-author", 2)
	b.AddUndirected(bo, paul, "co-author", 2)
	b.AddUndirected(john, paul, "co-author", 2)

	// Attribute edges, drawn so that the attribute is the author's
	// in-neighbor (reversed-surfing direction).
	attr := func(from, to hin.NodeID, label string) { b.AddEdge(from, to, label, 1) }
	attr(author, aditi, "is-a")
	attr(author, bo, "is-a")
	attr(author, john, "is-a")
	attr(author, paul, "is-a")
	attr(crowdMining, aditi, "interest")
	attr(webDM, bo, "interest")
	attr(spatialCS, john, "interest")
	attr(india, aditi, "origin")
	attr(china, bo, "origin")
	attr(usa, john, "origin")

	// Taxonomy edges, parent -> child in the reversed-surfing direction.
	attr(field, dataMining, "is-a")
	attr(field, crowd, "is-a")
	attr(dataMining, webDM, "is-a")
	attr(dataMining, crowdMining, "is-a")
	attr(crowd, crowdMining, "is-a")
	attr(crowd, spatialCS, "is-a")
	attr(country, asia, "is-a")
	attr(country, america, "is-a")
	attr(asia, india, "is-a")
	attr(asia, china, "is-a")
	attr(america, usa, "is-a")

	g, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Explicit taxonomy for Lin (primary parents; CrowdMining's primary
	// parent is Crowdsourcing).
	parents := make([]int32, g.NumNodes())
	for i := range parents {
		parents[i] = -1
	}
	set := func(c, p hin.NodeID) { parents[c] = int32(p) }
	set(dataMining, field)
	set(crowd, field)
	set(webDM, dataMining)
	set(crowdMining, crowd)
	set(spatialCS, crowd)
	set(asia, country)
	set(america, country)
	set(india, asia)
	set(china, asia)
	set(usa, america)
	set(aditi, author)
	set(bo, author)
	set(john, author)
	set(paul, author)
	tax, err := taxonomy.FromParents(parents, taxonomy.Options{})
	if err != nil {
		return nil, err
	}

	// Table 1 IC values.
	ics := map[hin.NodeID]float64{
		field: 0.001, author: 0.01, country: 0.015,
		asia: 0.02, america: 0.02,
		dataMining: 0.2, crowd: 0.3,
		webDM: 0.85, spatialCS: 0.7, crowdMining: 0.9,
		aditi: 1, bo: 1, john: 1, paul: 1,
		india: 1, china: 1, usa: 1,
	}
	for v, ic := range ics {
		tax.SetIC(int32(v), ic)
	}
	// Upper-ontology information content. The paper's cross-category Lin
	// scores are substantial (Example 3.2: Lin(Author, USA) = 0.2), i.e.
	// the AMiner domain ontology's top concepts are not vanishingly
	// uninformative. Table 1 does not list the top concept; 0.2 is
	// calibrated so that Example 2.2's published orderings reproduce —
	// John/Aditi above Bo/Aditi under SemSim at k >= 2 — while every
	// other published number (all four SimRank values, the semantic
	// bound 0.01) is matched exactly.
	tax.SetIC(tax.Root(), 0.2)

	// Published Lin values that depend on the full AMiner ontology
	// (Example 2.2): Lin(SpatialCrowdsourcing, CrowdMining) = 0.94 and
	// Lin(WebDataMining, CrowdMining) = 0.37 (the latter is unreachable
	// with a tree taxonomy because CrowdMining has two hypernyms).
	lin := semantic.NewOverride(semantic.Lin{Tax: tax})
	lin.Set(spatialCS, crowdMining, 0.94)
	lin.Set(webDM, crowdMining, 0.37)

	return &Network{Graph: g, Tax: tax, Lin: lin}, nil
}
