package paperexample

import (
	"math"
	"math/rand"
	"testing"

	"semsim/internal/semantic"
)

func TestBuildShape(t *testing.T) {
	net, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g := net.Graph
	if g.NumNodes() != 17 {
		t.Fatalf("nodes = %d, want 17", g.NumNodes())
	}
	// Each author has exactly 4 in-neighbors (co-author, Author category,
	// field, country) except Paul (3 co-authors + category).
	for _, name := range []string{"Aditi", "Bo", "John"} {
		if got := g.InDegree(g.MustNode(name)); got != 4 {
			t.Errorf("InDegree(%s) = %d, want 4", name, got)
		}
	}
	if got := g.InDegree(g.MustNode("Paul")); got != 4 {
		t.Errorf("InDegree(Paul) = %d, want 4 (3 co-authors + category)", got)
	}
	// Co-author weights are 2.
	paul := g.MustNode("Paul")
	w, mult := g.InEdgeAggregate(g.MustNode("Aditi"), paul)
	if w != 2 || mult != 1 {
		t.Errorf("W(Paul, Aditi) = %v x%d, want 2 x1", w, mult)
	}
}

func TestPublishedLinValues(t *testing.T) {
	net, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g := net.Graph
	cases := []struct {
		a, b string
		want float64
	}{
		{"Bo", "Aditi", 0.01},
		{"John", "Aditi", 0.01},
		{"SpatialCrowdsourcing", "CrowdMining", 0.94},
		{"WebDataMining", "CrowdMining", 0.37},
	}
	for _, tc := range cases {
		got := net.Lin.Sim(g.MustNode(tc.a), g.MustNode(tc.b))
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Lin(%s,%s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMeasureAdmissible(t *testing.T) {
	net, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := semantic.Validate(net.Lin, net.Graph.NumNodes(), 500, rng); err != nil {
		t.Errorf("Lin with overrides violates constraints: %v", err)
	}
}

func TestCrowdMiningHasTwoHypernyms(t *testing.T) {
	net, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g := net.Graph
	cm := g.MustNode("CrowdMining")
	in := g.InNeighbors(cm)
	// In the reversed-surfing orientation CrowdMining's in-neighbors are
	// its two hypernyms, Crowdsourcing and DataMining.
	if len(in) != 2 {
		t.Fatalf("InNeighbors(CrowdMining) = %d, want 2", len(in))
	}
	names := map[string]bool{}
	for _, v := range in {
		names[g.NodeName(v)] = true
	}
	if !names["Crowdsourcing"] || !names["DataMining"] {
		t.Errorf("CrowdMining hypernyms = %v", names)
	}
}
