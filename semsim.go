// Package semsim implements SemSim — "Boosting SimRank with Semantics"
// (Milo, Somech, Youngmann; EDBT 2019) — a similarity measure for
// heterogeneous information networks that refines SimRank by weighting
// structural similarity with edge weights and a pluggable semantic
// measure, together with the full computation framework of the paper:
//
//   - the iterative all-pairs fixpoint (Section 2),
//   - the semantic-aware random-surfer model on the node-pair graph G^2
//     and its threshold reduction G^2_theta (Section 3),
//   - the importance-sampling Monte-Carlo estimator with pruning and a
//     SLING-style normalization cache (Section 4),
//   - the SimRank baseline family and the quality-evaluation competitors
//     (Panther, PathSim, LINE, Relatedness) used in Section 5.
//
// # Quick start
//
//	b := semsim.NewGraphBuilder()
//	alice := b.AddNode("alice", "author")
//	bob := b.AddNode("bob", "author")
//	ai := b.AddNode("AI", "field")
//	b.AddUndirected(alice, bob, "co-author", 3)
//	b.AddEdge(alice, ai, "is-a", 1)
//	g, err := b.Build()
//	...
//	tax, err := semsim.BuildTaxonomy(g, semsim.TaxonomyOptions{})
//	idx, err := semsim.BuildIndex(g, semsim.NewLin(tax), semsim.IndexOptions{})
//	score := idx.Query(alice, bob)
//
// The internal packages expose the individual subsystems; this package is
// the stable, documented surface intended for downstream use.
//
// # Concurrency
//
// A built Index is safe for concurrent use: any number of goroutines may
// share one Index for Query, TopK, TopKSemBounded, SingleSource,
// BatchQuery and SimRankQuery, including with the SLING cache enabled
// (it is sharded with striped locks and atomic statistics). Parallel
// results are identical to serial ones. Construction (BuildIndex,
// LoadIndex, BuildTaxonomy, graph building) is single-threaded; treat
// those as per-goroutine operations. IndexOptions.Workers sizes the
// internal scoring pool used by TopK, SingleSource and BatchQuery.
package semsim

import (
	"io"

	"semsim/internal/core"
	"semsim/internal/engine"
	"semsim/internal/hin"
	"semsim/internal/mc"
	"semsim/internal/obs"
	"semsim/internal/obs/quality"
	"semsim/internal/semantic"
	"semsim/internal/simmat"
	"semsim/internal/simrank"
	"semsim/internal/taxonomy"
)

// NodeID identifies a vertex in a Graph (dense, insertion-ordered).
type NodeID = hin.NodeID

// Graph is an immutable heterogeneous information network
// (Definition 2.1): directed, vertex- and edge-labeled, with strictly
// positive edge weights.
type Graph = hin.Graph

// GraphBuilder accumulates nodes and edges into an immutable Graph.
type GraphBuilder = hin.Builder

// Edge is one directed, labeled, weighted edge.
type Edge = hin.Edge

// NewGraphBuilder returns an empty builder.
func NewGraphBuilder() *GraphBuilder { return hin.NewBuilder() }

// ReadGraph parses the line-oriented text format produced by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return hin.Read(r) }

// WriteGraph serializes g in the text format.
func WriteGraph(w io.Writer, g *Graph) error { return hin.Write(w, g) }

// Taxonomy is the "is-a" concept hierarchy with information-content
// values and O(1) lowest-common-ancestor queries.
type Taxonomy = taxonomy.Taxonomy

// TaxonomyOptions configure taxonomy construction.
type TaxonomyOptions = taxonomy.Options

// BuildTaxonomy extracts the taxonomy of g from its hypernym edges
// (default label "is-a") and computes Seco-style IC values in (0,1].
func BuildTaxonomy(g *Graph, opts TaxonomyOptions) (*Taxonomy, error) {
	return taxonomy.FromGraph(g, opts)
}

// Measure is a pluggable semantic similarity: any function satisfying the
// paper's three admissibility constraints (symmetry, unit self-similarity,
// range (0,1]) can be injected into SemSim.
type Measure = semantic.Measure

// NewLin returns the Lin information-content measure over tax, the
// measure used throughout the paper's experiments.
func NewLin(tax *Taxonomy) Measure { return semantic.Lin{Tax: tax} }

// NewResnik returns the Resnik IC measure (IC of the LCA).
func NewResnik(tax *Taxonomy) Measure { return semantic.Resnik{Tax: tax} }

// NewWuPalmer returns the Wu–Palmer depth measure.
func NewWuPalmer(tax *Taxonomy) Measure { return semantic.WuPalmer{Tax: tax} }

// NewPathMeasure returns the Rada edge-counting measure 1/(1+dist).
func NewPathMeasure(tax *Taxonomy) Measure { return semantic.Path{Tax: tax} }

// NewJiangConrath returns the Jiang–Conrath IC-distance measure.
func NewJiangConrath(tax *Taxonomy) Measure { return semantic.JiangConrath{Tax: tax} }

// UniformMeasure assigns sem = 1 everywhere; SemSim with it (and unit
// weights) degenerates to exactly SimRank.
func UniformMeasure() Measure { return semantic.Uniform{} }

// ValidateMeasure property-checks the three admissibility constraints on
// random node pairs; see semantic.Validate.
var ValidateMeasure = semantic.Validate

// ScoreMatrix is a dense symmetric all-pairs similarity matrix.
type ScoreMatrix = simmat.Matrix

// ExactOptions configure the iterative fixpoint computation.
type ExactOptions = core.IterOptions

// ExactResult carries the converged matrix and per-iteration deltas.
type ExactResult = core.Result

// Exact computes all-pairs SemSim by iterating Equation 3 to its fixpoint
// — the ground-truth (O(k d^2 n^2)) computation of Section 2.3.
func Exact(g *Graph, sem Measure, opts ExactOptions) (*ExactResult, error) {
	return core.Iterative(g, sem, opts)
}

// DecayUpperBound returns min(min N(u,v), 1): Theorem 2.3(5) guarantees a
// unique SemSim solution for any decay factor strictly below it.
// maxPairs > 0 samples instead of scanning all pairs.
func DecayUpperBound(g *Graph, sem Measure, maxPairs int) float64 {
	return core.DecayUpperBound(g, sem, maxPairs)
}

// SimRankOptions configure the baseline SimRank computations.
type SimRankOptions = simrank.IterOptions

// SimRankResult carries SimRank's converged matrix and deltas.
type SimRankResult = simrank.Result

// SimRank computes all-pairs SimRank (Jeh–Widom) — the structural
// baseline SemSim refines.
func SimRank(g *Graph, opts SimRankOptions) (*SimRankResult, error) {
	return simrank.Iterative(g, opts)
}

// SimRankPlusPlus computes all-pairs SimRank++ (weighted, with evidence).
func SimRankPlusPlus(g *Graph, opts SimRankOptions) (*SimRankResult, error) {
	return simrank.PlusPlus(g, opts)
}

// PRankOptions configure the P-Rank baseline.
type PRankOptions = simrank.PRankOptions

// PRank computes all-pairs P-Rank (in- and out-link evidence).
func PRank(g *Graph, opts PRankOptions) (*SimRankResult, error) {
	return simrank.PRank(g, opts)
}

// Metrics is the engine's observability registry (see internal/obs):
// lock-free counters, gauges and fixed-bucket latency histograms that
// the index's hot paths record into when IndexOptions.Metrics is set.
// Export it with Snapshot (structured), WriteText (Prometheus text
// exposition for a /metrics endpoint) or PublishExpvar (/debug/vars).
// A nil *Metrics disables all instrumentation at zero cost.
type Metrics = obs.Registry

// NewMetrics returns an empty registry to pass as IndexOptions.Metrics.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// MetricsSnapshot is a point-in-time, JSON-marshalable copy of every
// instrument (Index.Snapshot / Metrics.Snapshot).
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is one histogram's snapshot: count, sum, cumulative
// buckets and interpolated p50/p95/p99.
type HistogramSnapshot = obs.HistogramSnapshot

// Trace records named timed spans for one operation — pass it as
// IndexOptions.Trace for a per-phase build breakdown, or wrap your own
// phases with Trace.Start/Span.End; String renders the aligned report.
// A nil *Trace ignores all calls.
type Trace = obs.Trace

// TraceSpan is one finished trace span (name, start offset, duration).
type TraceSpan = obs.SpanRecord

// NewTrace starts an empty trace.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// CacheSummary is the SLING SO-cache's coherent statistics snapshot:
// hits, misses, the derived hit ratio and stored entries
// (Index.CacheSummary).
type CacheSummary = mc.CacheSummary

// Cost is a per-query work accumulator (see internal/obs): pass a
// pointer to Index.QueryCost / Index.TopKCost and the query path counts
// the walk steps scanned, SO-cache hits/misses, kernel probes, lazy
// block-cache traffic and pruning events it spent answering. Plain
// field bumps on the caller's struct — zero allocation, no atomics; a
// nil *Cost disables accounting. The struct is JSON-marshalable as-is
// (the shape embedded in /explain, the query log and the flight
// recorder).
type Cost = obs.Cost

// Explanation is the per-query evidence record returned by
// Index.ExplainQuery: walk samples used, per-step meeting counts,
// empirical variance with a 95% CLT confidence interval on the
// estimate, theta-pruning accounting and cache/kernel provenance. It is
// JSON-marshalable as-is (the shape served at /explain by semsim
// serve). See internal/obs/quality for field semantics.
type Explanation = quality.Explanation

// ErrNodeOutOfRange is wrapped by every bounds-validation error from
// index entry points that return errors (BatchQuery, SingleSource,
// ExplainQuery): errors.Is(err, ErrNodeOutOfRange) distinguishes an
// unknown-node request (HTTP 404 territory) from an internal failure.
var ErrNodeOutOfRange = engine.ErrNodeOutOfRange
