#!/bin/sh
# CI gate for the semsim repository. Three tiers, all required:
#
#   1. build + vet + full test suite        (functional correctness),
#      plus the observability smoke test: starts the semsim serve
#      debug server, scrapes /metrics and asserts the core series,
#      then lints a live /metrics scrape with cmd/promlint (the 0.0.4
#      exposition-format gate), then drives the same live server with
#      cmd/loadgen for ~5s and asserts nonzero throughput, zero 5xx
#      and a sane p99 (the serving-SLO smoke: burn-rate gauges,
#      build_info and the profile counters are all in the linted
#      scrape, and the trace log fills with sampled spans), then the
#      diagnostics smoke: the flight recorder and heavy-hitters
#      endpoints are live, the per-query cost histograms observed the
#      traffic, and `semsim diag` pulls /debug/diag into a bundle whose
#      flight records join the query log by request ID, and the
#      capacity smoke: datagen -stream emits a v3 walk file, convert
#      round-trips it through v2, and serve answers from it demand-paged
#      (-lazy-walks) under a tiny block-cache budget
#   2. full test suite under -race          (concurrency correctness —
#      the stress tests drive 8+ goroutines through one shared cached
#      Index and assert bit-identical results vs serial runs; includes
#      the internal/obs concurrent-instrument tests and the
#      cross-backend conformance harness of internal/engine)
#   3. fuzz seed corpora as unit tests      (IO robustness regression,
#      plus the backend-agreement differential fuzzer's seeds)
#   4. bench drift guard                    (perf regression — reruns
#      the hot-path benchmarks and fails on ns/op drift beyond the
#      noise-sized BENCH_DRIFT_MAX bar, or any new allocation, vs the
#      committed BENCH_query.json baseline)
#
# Usage: ./ci.sh   (or: make ci)
set -eu

echo "==> tier 1: build"
go build ./...

echo "==> tier 1: vet (includes internal/obs)"
go vet ./...

echo "==> tier 1: tests"
go test ./...

echo "==> tier 1: serve observability smoke test"
go test ./cmd/semsim/ -run TestServeSmoke -count=1

echo "==> tier 1: /metrics exposition lint (promlint scrape of a live server)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"; [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
go build -o "$tmpdir/semsim" ./cmd/semsim
go build -o "$tmpdir/loadgen" ./cmd/loadgen
go run ./cmd/datagen -dataset aminer -size 200 -seed 1 -out "$tmpdir/smoke.hin"
"$tmpdir/semsim" serve -graph "$tmpdir/smoke.hin" -debug-addr 127.0.0.1:0 \
    -nw 40 -t 6 -query-log "$tmpdir/query.ndjson" -query-log-max-bytes 262144 \
    -query-log-max-generations 8 \
    -slo-latency 250ms -slo-window 1m \
    -trace-log "$tmpdir/trace.ndjson" -trace-sample 0.1 \
    -profile-p99 2s 2> "$tmpdir/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|.*serving on http://\([0-9.:]*\).*|\1|p' "$tmpdir/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$tmpdir/serve.log"; echo "ci: serve died"; exit 1; }
    sleep 0.2
done
[ -n "$addr" ] || { cat "$tmpdir/serve.log"; echo "ci: serve never bound"; exit 1; }
go run ./cmd/promlint -url "http://$addr/metrics"
echo "    /metrics exposition clean (incl. SLO, build_info and profiler series)"

echo "==> tier 1: loadgen smoke (5s closed loop + background /mutate churn)"
"$tmpdir/loadgen" -url "http://$addr" -graph "$tmpdir/smoke.hin" \
    -duration 5s -warmup 1s -concurrency 4 -seed 1 \
    -mutate-every 500ms -mutate-label co-author \
    -check-min-qps 1 -check-max-5xx 0 -check-max-p99 2s \
    -check-min-mutations 3 \
    -out "$tmpdir/loadgen.json"
grep -o '"throughput_qps": [0-9.]*' "$tmpdir/loadgen.json" \
    || { echo "ci: loadgen report missing throughput"; exit 1; }
grep -o '"final_epoch": [0-9]*' "$tmpdir/loadgen.json" \
    || { echo "ci: loadgen report missing the mutation epoch"; exit 1; }
# Re-lint the scrape after real traffic: the burn-rate gauges, the
# HTTP/trace-log counters and the commit/epoch series are now nonzero
# and must still be clean.
go run ./cmd/promlint -url "http://$addr/metrics"
# Queries raced an epoch's worth of commits: the epoch gauge moved, no
# request failed (checked above), and shadow verification stayed flat —
# a critical drift would mean a query answered from a torn snapshot.
curl -sf "http://$addr/metrics" > "$tmpdir/metrics.after"
grep -q '^semsim_mutator_epoch [1-9]' "$tmpdir/metrics.after" \
    || { echo "ci: mutator epoch never advanced under churn"; exit 1; }
grep -q '^semsim_commit_seconds_count [1-9]' "$tmpdir/metrics.after" \
    || { echo "ci: commit latency was never recorded"; exit 1; }
if grep '^semsim_shadow_drift_total{severity="critical"}' "$tmpdir/metrics.after" \
    | grep -qv ' 0$'; then
    echo "ci: shadow verifier saw critical drift under mutate churn"; exit 1
fi
echo "==> tier 1: diagnostics bundle smoke (/debug/diag + semsim diag round-trip)"
# Flight recorder: the loadgen traffic above must be in the ring, and
# its deterministic lg-* request IDs must join back to the query log.
curl -sf "http://$addr/debug/flight" > "$tmpdir/flight.ndjson"
grep -q '"request_id":"lg-1-' "$tmpdir/flight.ndjson" \
    || { echo "ci: flight recorder holds no loadgen request IDs"; exit 1; }
grep -q '"endpoint":"/mutate"' "$tmpdir/flight.ndjson" \
    || { echo "ci: flight recorder missed the mutation commits"; exit 1; }
curl -sf "http://$addr/debug/heavy" > "$tmpdir/heavy.json"
grep -q '"count":' "$tmpdir/heavy.json" \
    || { echo "ci: heavy-hitters tracker is empty after loadgen traffic"; exit 1; }
grep -q '^semsim_query_cost_walk_steps_count [1-9]' "$tmpdir/metrics.after" \
    || { echo "ci: per-query cost histograms never observed a request"; exit 1; }
"$tmpdir/semsim" diag -addr "$addr" -out "$tmpdir/diag" > "$tmpdir/diag.log"
for entry in metrics.prom expvar.json flight.ndjson profiles.json slo.json heavy.json buildinfo.json; do
    [ -s "$tmpdir/diag/$entry" ] \
        || { cat "$tmpdir/diag.log"; echo "ci: diag bundle entry $entry missing or empty"; exit 1; }
done
[ -f "$tmpdir/diag/traces.ndjson" ] \
    || { echo "ci: diag bundle entry traces.ndjson missing"; exit 1; }
grep -q '"enabled": true' "$tmpdir/diag/slo.json" \
    || { echo "ci: diag slo.json does not reflect the armed SLO tracker"; exit 1; }
# The bundled flight dump joins to the query log by request ID. The
# log rotates under traffic, so -query-log-max-generations above must
# keep enough generations to still hold the earliest request; search
# every generation.
join_id=$(sed -n 's|.*"endpoint":"/query","request_id":"\(lg-1-[0-9]*\)".*|\1|p' "$tmpdir/diag/flight.ndjson" | head -1)
[ -n "$join_id" ] || { echo "ci: bundled flight dump holds no loadgen /query record"; exit 1; }
cat "$tmpdir"/query.ndjson* | grep -q "\"request_id\":\"$join_id\"" \
    || { echo "ci: flight request $join_id has no query-log line"; exit 1; }
echo "    diag bundle green (flight/heavy/cost series live, bundle joins to query log)"

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
[ -f "$tmpdir/query.ndjson" ] || { echo "ci: -query-log file was never created"; exit 1; }
[ -s "$tmpdir/trace.ndjson" ] || { echo "ci: -trace-log never received a sampled trace"; exit 1; }
grep -q "final metrics snapshot" "$tmpdir/serve.log" \
    || { echo "ci: serve shutdown never logged the final snapshot"; exit 1; }
echo "    loadgen smoke green (report at loadgen.json, traces sampled, final snapshot logged)"

echo "==> tier 1: streaming v3 build + lazy serve smoke"
# End to end million-node-capacity path at smoke scale: datagen -stream
# emits a v3 walk file without materializing the walk slab, convert
# round-trips it through v2, and serve answers from the v3 file
# demand-paged under a deliberately tiny block-cache budget.
go run ./cmd/datagen -dataset amazon -size 300 -seed 2 -out "$tmpdir/stream.hin" \
    -walks "$tmpdir/stream.walks" -stream -nw 40 -t 6 -walk-seed 1
"$tmpdir/semsim" convert -graph "$tmpdir/stream.hin" \
    -in "$tmpdir/stream.walks" -out "$tmpdir/stream.walks.v2" -walk-format v2
"$tmpdir/semsim" convert -graph "$tmpdir/stream.hin" \
    -in "$tmpdir/stream.walks.v2" -out "$tmpdir/stream.walks.rt" -walk-format v3
cmp "$tmpdir/stream.walks" "$tmpdir/stream.walks.rt" \
    || { echo "ci: v3 -> v2 -> v3 convert round-trip diverged"; exit 1; }
"$tmpdir/semsim" serve -graph "$tmpdir/stream.hin" -debug-addr 127.0.0.1:0 \
    -nw 40 -t 6 -load-walks "$tmpdir/stream.walks" \
    -lazy-walks -walk-cache-bytes 65536 2> "$tmpdir/serve-lazy.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|.*serving on http://\([0-9.:]*\).*|\1|p' "$tmpdir/serve-lazy.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$tmpdir/serve-lazy.log"; echo "ci: lazy serve died"; exit 1; }
    sleep 0.2
done
[ -n "$addr" ] || { cat "$tmpdir/serve-lazy.log"; echo "ci: lazy serve never bound"; exit 1; }
curl -sf "http://$addr/metrics" > "$tmpdir/metrics.lazy"
grep -q 'walk_residency="lazy"' "$tmpdir/metrics.lazy" \
    || { echo "ci: build_info does not report lazy residency"; exit 1; }
grep -q '^semsim_walk_cache_misses_total [1-9]' "$tmpdir/metrics.lazy" \
    || { echo "ci: lazy serve never decoded a block (cache misses flat)"; exit 1; }
# The walk-cache series only exist on a lazy server; lint them too.
go run ./cmd/promlint -url "http://$addr/metrics"
curl -sf "http://$addr/query?u=item-1&v=item-2" > /dev/null \
    || { echo "ci: lazy serve query failed"; exit 1; }
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
echo "    streaming build + convert round-trip + lazy serve green"

echo "==> tier 2: race detector"
go test -race ./...

echo "==> tier 2: obs instruments under race"
go test -race ./internal/obs/

echo "==> tier 2: backend conformance under race"
go test -race ./internal/engine/...

echo "==> tier 2: mutator churn stress under race"
go test -race -run 'TestMutatorChurnStress|TestMutatorSnapshotIsolation' -count=1 .

echo "==> tier 3: fuzz seed corpora"
go test ./internal/walk/ -run Fuzz
go test ./internal/engine/conformance/ -run Fuzz

echo "==> tier 4: bench drift guard (hot paths vs BENCH_query.json)"
make bench-drift

echo "==> ci: all tiers green"
