#!/bin/sh
# CI gate for the semsim repository. Three tiers, all required:
#
#   1. build + vet + full test suite        (functional correctness),
#      plus the observability smoke test: starts the semsim serve
#      debug server, scrapes /metrics and asserts the core series
#   2. full test suite under -race          (concurrency correctness —
#      the stress tests drive 8+ goroutines through one shared cached
#      Index and assert bit-identical results vs serial runs; includes
#      the internal/obs concurrent-instrument tests)
#   3. fuzz seed corpora as unit tests      (IO robustness regression)
#   4. bench drift guard                    (perf regression — reruns
#      the hot-path benchmarks and fails if any is >25% ns/op slower
#      than the committed BENCH_query.json baseline)
#
# Usage: ./ci.sh   (or: make ci)
set -eu

echo "==> tier 1: build"
go build ./...

echo "==> tier 1: vet (includes internal/obs)"
go vet ./...

echo "==> tier 1: tests"
go test ./...

echo "==> tier 1: serve observability smoke test"
go test ./cmd/semsim/ -run TestServeSmoke -count=1

echo "==> tier 2: race detector"
go test -race ./...

echo "==> tier 2: obs instruments under race"
go test -race ./internal/obs/

echo "==> tier 3: fuzz seed corpora"
go test ./internal/walk/ -run Fuzz

echo "==> tier 4: bench drift guard (hot paths vs BENCH_query.json)"
make bench-drift

echo "==> ci: all tiers green"
