package semsim_test

// Concurrency stress tests for the public query surface: many goroutines
// hammer one cached Index and every result is checked against a serial
// oracle computed up front. Run with -race; the suite is the executable
// form of the package's concurrency contract (one Index, any number of
// callers, identical results).

import (
	"fmt"
	"sync"
	"testing"

	"semsim"
	"semsim/internal/datagen"
)

// stressIndex builds one cached, meet-indexed Index over a deterministic
// synthetic dataset.
func stressIndex(t *testing.T) (*semsim.Index, *datagen.Dataset) {
	t.Helper()
	d, err := datagen.Amazon(datagen.AmazonConfig{Items: 120, Seed: 33})
	if err != nil {
		t.Fatalf("datagen.Amazon: %v", err)
	}
	idx, err := semsim.BuildIndex(d.Graph, d.Lin, semsim.IndexOptions{
		NumWalks: 40, WalkLength: 8, C: 0.6, Theta: 0.05,
		SLINGCutoff: 0.1, Seed: 5, MeetIndex: true, Workers: 8,
	})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	return idx, d
}

// TestIndexConcurrentStress runs 8 goroutines of mixed Query / TopK /
// SingleSource / BatchQuery traffic against one shared cached Index and
// compares every answer to serial results captured before the storm.
func TestIndexConcurrentStress(t *testing.T) {
	idx, d := stressIndex(t)
	n := d.Graph.NumNodes()

	// Serial oracle, computed single-threaded before any concurrency.
	queryPairs := make([][2]semsim.NodeID, 0, 256)
	for i := 0; i < 256; i++ {
		queryPairs = append(queryPairs,
			[2]semsim.NodeID{semsim.NodeID(i * 5 % n), semsim.NodeID((i*11 + 3) % n)})
	}
	wantQuery := make([]float64, len(queryPairs))
	for i, p := range queryPairs {
		wantQuery[i] = idx.Query(p[0], p[1])
	}
	sources := []semsim.NodeID{0, 7, 19, 42, 63, semsim.NodeID(n - 1)}
	wantTopK := make([][]semsim.Scored, len(sources))
	wantSS := make([][]semsim.Scored, len(sources))
	for i, u := range sources {
		wantTopK[i] = idx.TopK(u, 10)
		ss, err := idx.SingleSource(u)
		if err != nil {
			t.Fatalf("SingleSource(%d): %v", u, err)
		}
		wantSS[i] = ss
	}

	const goroutines = 10
	const rounds = 3
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch (w + r) % 4 {
				case 0: // single-pair traffic
					for i, p := range queryPairs {
						if got := idx.Query(p[0], p[1]); got != wantQuery[i] {
							fail("Query(%d,%d) = %v, serial %v", p[0], p[1], got, wantQuery[i])
							return
						}
					}
				case 1: // top-k traffic
					for i, u := range sources {
						if !scoredEqual(idx.TopK(u, 10), wantTopK[i]) {
							fail("TopK(%d) diverged from serial run", u)
							return
						}
					}
				case 2: // single-source traffic
					for i, u := range sources {
						got, err := idx.SingleSource(u)
						if err != nil {
							fail("SingleSource(%d): %v", u, err)
							return
						}
						if !scoredEqual(got, wantSS[i]) {
							fail("SingleSource(%d) diverged from serial run", u)
							return
						}
					}
				case 3: // batched traffic
					got, err := idx.BatchQuery(queryPairs, 4)
					if err != nil {
						fail("BatchQuery: %v", err)
						return
					}
					for i := range got {
						if got[i] != wantQuery[i] {
							fail("BatchQuery[%d] = %v, serial %v", i, got[i], wantQuery[i])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if hits, _ := idx.CacheStats(); hits == 0 {
		t.Error("SLING cache recorded no hits under the concurrent storm")
	}
}

// TestIndexConcurrentTopKSemBounded exercises the Prop 2.5 early-exit
// path (which shares the cache but scans serially) under contention.
func TestIndexConcurrentTopKSemBounded(t *testing.T) {
	idx, d := stressIndex(t)
	n := d.Graph.NumNodes()
	sources := []semsim.NodeID{1, 9, 27, semsim.NodeID(n - 2)}
	want := make([][]semsim.Scored, len(sources))
	for i, u := range sources {
		want[i] = idx.TopKSemBounded(u, 8)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, u := range sources {
				if !scoredEqual(idx.TopKSemBounded(u, 8), want[i]) {
					select {
					case errc <- fmt.Errorf("TopKSemBounded(%d) diverged under concurrency", u):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func scoredEqual(a, b []semsim.Scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
