// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic datasets (see DESIGN.md for the
// experiment index and substitutions):
//
//	experiments -run all            # everything
//	experiments -run figure3        # convergence
//	experiments -run table3         # G^2 vs G^2_theta sizes
//	experiments -run figure4        # single-pair query times (+ SLING)
//	experiments -run table4         # approximation accuracy
//	experiments -run table5         # term relatedness
//	experiments -run figure5a       # link prediction
//	experiments -run figure5b       # entity resolution
//	experiments -run preprocessing  # offline costs
//
// -scale paper increases the dataset sizes towards the paper's "small
// dataset" proportions (slower); the default "quick" scale finishes in
// well under a minute.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"semsim/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment: all, figure3, table3, figure4, table4, table5, figure5a, figure5b, preprocessing, ablation")
		scale = flag.String("scale", "quick", "quick or paper")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	big := *scale == "paper"
	sz := func(quick, paper int) int {
		if big {
			return paper
		}
		return quick
	}

	type experiment struct {
		name string
		run  func() (interface{ Render() string }, error)
	}
	all := []experiment{
		{"figure3", func() (interface{ Render() string }, error) {
			return experiments.Convergence(experiments.ConvergenceConfig{
				Authors: sz(300, 1200), Items: sz(300, 1200), Seed: *seed})
		}},
		{"table3", func() (interface{ Render() string }, error) {
			return experiments.G2Reduction(experiments.G2Config{
				Authors: sz(400, 1000), Articles: sz(400, 1000), Seed: *seed})
		}},
		{"figure4", func() (interface{ Render() string }, error) {
			return experiments.QueryTimes(experiments.QueryTimesConfig{
				Items: sz(800, 3000), Queries: sz(200, 1000), Seed: *seed})
		}},
		{"table4", func() (interface{ Render() string }, error) {
			return experiments.Accuracy(experiments.AccuracyConfig{
				Authors: sz(300, 800), Items: sz(300, 800),
				Pairs: sz(200, 1000), Runs: sz(20, 100), Seed: *seed})
		}},
		{"table5", func() (interface{ Render() string }, error) {
			return experiments.Relatedness(experiments.RelatednessConfig{
				Articles: sz(500, 1500), Nouns: sz(800, 3000),
				Pairs: sz(150, 342), Seed: *seed})
		}},
		{"figure5a", func() (interface{ Render() string }, error) {
			return experiments.LinkPrediction(experiments.PredictionConfig{
				Items: sz(500, 1500), RemovedEdges: sz(60, 300), Seed: *seed})
		}},
		{"figure5b", func() (interface{ Render() string }, error) {
			return experiments.EntityResolution(experiments.PredictionConfig{
				Authors: sz(400, 1200), Duplicates: sz(20, 30), Seed: *seed})
		}},
		{"preprocessing", func() (interface{ Render() string }, error) {
			return experiments.Preprocessing(experiments.PreprocessingConfig{
				Authors: sz(500, 2000), Items: sz(500, 2000),
				Articles: sz(500, 2000), Nouns: sz(2000, 10000), Seed: *seed})
		}},
		{"ablation", func() (interface{ Render() string }, error) {
			return experiments.Ablation(experiments.AblationConfig{
				Nouns: sz(600, 2000), Pairs: sz(150, 342),
				Items: sz(400, 1200), QueryPairs: sz(150, 500), Seed: *seed})
		}},
	}

	selected := strings.Split(*run, ",")
	matched := 0
	for _, e := range all {
		want := false
		for _, s := range selected {
			if s == "all" || s == e.name {
				want = true
			}
		}
		if !want {
			continue
		}
		matched++
		start := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("### %s (%.1fs)\n\n%s\n", e.name, time.Since(start).Seconds(), res.Render())
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown -run %q\n", *run)
		os.Exit(2)
	}
}
