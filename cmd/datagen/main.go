// Command datagen writes a synthetic dataset (see internal/datagen and the
// substitution notes in DESIGN.md) to a HIN text file:
//
//	datagen -dataset aminer -size 1000 -seed 1 -out aminer.hin
//
// With -walks FILE it additionally samples the reversed-walk index for
// the generated graph and persists it in the v3 block format; -stream
// uses the streaming builder (walk.BuildStreaming), which emits blocks
// as they are sampled and never materializes the full walk slab — the
// peak memory is one block, so million-node indexes build on small
// machines:
//
//	datagen -dataset amazon -size 100000 -out amazon.hin \
//	        -walks amazon.walks -stream -nw 150 -t 15
//
// Datasets: aminer, amazon, wikipedia, wordnet.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"semsim/internal/datagen"
	"semsim/internal/hin"
	"semsim/internal/walk"
)

func main() {
	var (
		dataset    = flag.String("dataset", "aminer", "aminer, amazon, wikipedia or wordnet")
		size       = flag.Int("size", 1000, "entity count (authors/items/articles/nouns)")
		seed       = flag.Int64("seed", 1, "random seed")
		out        = flag.String("out", "", "output path (default stdout)")
		walks      = flag.String("walks", "", "also sample a walk index and save it (v3) to this file")
		stream     = flag.Bool("stream", false, "build the walk file with the streaming builder (one-block peak memory)")
		nw         = flag.Int("nw", 150, "walks per node for -walks")
		t          = flag.Int("t", 15, "walk length for -walks")
		walkSeed   = flag.Int64("walk-seed", 1, "walk-sampling seed for -walks")
		blockBytes = flag.Int("block-bytes", 0,
			"target uncompressed block size for -stream (0 = 64 KiB default)")
	)
	flag.Parse()

	var (
		d   *datagen.Dataset
		err error
	)
	switch *dataset {
	case "aminer":
		d, err = datagen.AMiner(datagen.AMinerConfig{Authors: *size, Seed: *seed})
	case "amazon":
		d, err = datagen.Amazon(datagen.AmazonConfig{Items: *size, Seed: *seed})
	case "wikipedia":
		d, err = datagen.Wikipedia(datagen.WikipediaConfig{Articles: *size, Seed: *seed})
	case "wordnet":
		d, err = datagen.WordNet(datagen.WordNetConfig{Nouns: *size, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := hin.Write(w, d.Graph); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	st := d.Graph.Stats()
	fmt.Fprintf(os.Stderr, "datagen: %s: %d nodes, %d edges, %d labels\n",
		d.Name, st.Nodes, st.Edges, st.Labels)

	if *walks != "" {
		if err := writeWalks(d.Graph, *walks, *stream, *nw, *t, *walkSeed, *blockBytes); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
	}
}

// writeWalks samples the walk index for g and persists it in the v3
// block format — through walk.BuildStreaming when stream is set (blocks
// are emitted as sampled; both paths produce byte-identical files).
func writeWalks(g *hin.Graph, path string, stream bool, nw, t int, seed int64, blockBytes int) error {
	if blockBytes <= 0 {
		blockBytes = walk.DefaultBlockBytes
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	opts := walk.Options{NumWalks: nw, Length: t, Seed: seed, Parallel: !stream}
	var written int64
	if stream {
		bw := bufio.NewWriter(f)
		written, err = walk.BuildStreaming(g, opts, blockBytes, bw)
		if err == nil {
			err = bw.Flush()
		}
	} else {
		var ix *walk.Index
		ix, err = walk.Build(g, opts)
		if err == nil {
			written, err = ix.WriteTo(f)
		}
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	mode := "resident build"
	if stream {
		mode = "streaming build"
	}
	fmt.Fprintf(os.Stderr, "datagen: walks: %s -> %s (%d bytes, nw=%d t=%d)\n",
		mode, path, written, nw, t)
	return nil
}
