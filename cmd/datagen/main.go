// Command datagen writes a synthetic dataset (see internal/datagen and the
// substitution notes in DESIGN.md) to a HIN text file:
//
//	datagen -dataset aminer -size 1000 -seed 1 -out aminer.hin
//
// Datasets: aminer, amazon, wikipedia, wordnet.
package main

import (
	"flag"
	"fmt"
	"os"

	"semsim/internal/datagen"
	"semsim/internal/hin"
)

func main() {
	var (
		dataset = flag.String("dataset", "aminer", "aminer, amazon, wikipedia or wordnet")
		size    = flag.Int("size", 1000, "entity count (authors/items/articles/nouns)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	var (
		d   *datagen.Dataset
		err error
	)
	switch *dataset {
	case "aminer":
		d, err = datagen.AMiner(datagen.AMinerConfig{Authors: *size, Seed: *seed})
	case "amazon":
		d, err = datagen.Amazon(datagen.AmazonConfig{Items: *size, Seed: *seed})
	case "wikipedia":
		d, err = datagen.Wikipedia(datagen.WikipediaConfig{Articles: *size, Seed: *seed})
	case "wordnet":
		d, err = datagen.WordNet(datagen.WordNetConfig{Nouns: *size, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := hin.Write(w, d.Graph); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	st := d.Graph.Stats()
	fmt.Fprintf(os.Stderr, "datagen: %s: %d nodes, %d edges, %d labels\n",
		d.Name, st.Nodes, st.Edges, st.Labels)
}
