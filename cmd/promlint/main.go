// Command promlint validates Prometheus text exposition (0.0.4) input —
// the CI gate that keeps the semsim /metrics endpoint scrapeable. It
// checks TYPE/HELP placement, metric and label syntax (including label
// value escaping), sample values, and histogram bucket monotonicity;
// see internal/promlint for the full rule set.
//
//	promlint FILE...           lint files
//	promlint                   lint stdin
//	promlint -url URL          scrape URL (with retries) and lint the body
//
// Exit status 0 when every input is clean, 1 on problems (each printed
// as "input: line N: message"), 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"semsim/internal/promlint"
)

func main() {
	var (
		url     = flag.String("url", "", "scrape this URL and lint the response body")
		retries = flag.Int("retries", 10, "scrape attempts before giving up (with -url)")
		wait    = flag.Duration("retry-wait", 200*time.Millisecond, "delay between scrape attempts (with -url)")
	)
	flag.Parse()

	failed := false
	lint := func(name string, r io.Reader) {
		for _, p := range promlint.Lint(r) {
			fmt.Fprintf(os.Stderr, "%s: %s\n", name, p)
			failed = true
		}
	}

	switch {
	case *url != "":
		body, err := scrape(*url, *retries, *wait)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(2)
		}
		lint(*url, body)
		body.Close()
	case flag.NArg() == 0:
		lint("stdin", os.Stdin)
	default:
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "promlint:", err)
				os.Exit(2)
			}
			lint(path, f)
			f.Close()
		}
	}
	if failed {
		os.Exit(1)
	}
}

// scrape GETs url, retrying while the server comes up — promlint's CI
// role is to lint a freshly started exporter, so connection refusals
// within the retry budget are expected, not fatal.
func scrape(url string, retries int, wait time.Duration) (io.ReadCloser, error) {
	var lastErr error
	for i := 0; i < retries; i++ {
		if i > 0 {
			time.Sleep(wait)
		}
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("GET %s: %s", url, resp.Status)
			continue
		}
		return resp.Body, nil
	}
	return nil, fmt.Errorf("scrape failed after %d attempts: %w", retries, lastErr)
}
