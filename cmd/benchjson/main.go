// Command benchjson runs the repository's Go benchmarks and writes the
// parsed results as JSON, so the performance trajectory can be tracked
// commit over commit (the BENCH_*.json files referenced by the roadmap):
//
//	benchjson -out BENCH_query.json -bench 'BenchmarkQuery|BenchmarkTopK' [-pkg .] [-count 1]
//
// It shells out to `go test -run ^$ -bench ... -benchmem` and parses the
// standard benchmark output lines:
//
//	BenchmarkQuerySemSimMC-8   12345   9876 ns/op   12 B/op   3 allocs/op
//
// Entries carry ns/op, B/op and allocs/op per benchmark plus run
// metadata (Go version, GOMAXPROCS, timestamp, git commit when
// available).
//
// With -compare BASELINE.json the run becomes a drift guard: fresh
// results are checked against the stored baseline and the process exits
// nonzero if any benchmark present in both regressed by more than
// -max-regress (default 0.25, i.e. +25% ns/op). To damp scheduler
// noise, pass -count N and the minimum ns/op across repetitions is
// compared. In compare mode the baseline is left untouched unless -out
// is also given explicitly.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line. BytesPerOp and AllocsPerOp are
// always emitted — an explicit 0 is the recorded proof of a
// zero-allocation path, which the -compare guard then defends.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the emitted JSON document.
type Report struct {
	GeneratedAt time.Time `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	NumCPU      int       `json:"num_cpu"`
	Commit      string    `json:"commit,omitempty"`
	BenchRegexp string    `json:"bench_regexp"`
	Package     string    `json:"package"`
	Benchmarks  []Result  `json:"benchmarks"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_query.json", "output JSON path")
		bench      = flag.String("bench", "BenchmarkQuery|BenchmarkTopK|BenchmarkSingleSource|BenchmarkBatch", "benchmark regexp passed to -bench")
		pkg        = flag.String("pkg", ".", "package to benchmark")
		count      = flag.Int("count", 1, "benchmark repetitions (-count)")
		benchtime  = flag.String("benchtime", "", "per-benchmark budget passed to -benchtime (e.g. 0.2s, 100x)")
		compare    = flag.String("compare", "", "baseline JSON to compare against; exit 1 on regression")
		maxRegress = flag.Float64("max-regress", 0.25, "max tolerated ns/op regression vs the baseline (0.25 = +25%)")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$",
		"-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkg)
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatal(fmt.Errorf("go test -bench failed: %w", err))
	}

	results := parseBench(buf.String())
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched %q — output was:\n%s", *bench, buf.String()))
	}

	var regressions []string
	if *compare != "" {
		baseline, err := loadReport(*compare)
		if err != nil {
			fatal(fmt.Errorf("loading baseline: %w", err))
		}
		regressions = findRegressions(baseline.Benchmarks, results, *maxRegress)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson:", r)
		}
		// In compare mode the baseline stays untouched unless the caller
		// explicitly asked for a fresh -out.
		outSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "out" {
				outSet = true
			}
		})
		if !outSet {
			if len(regressions) > 0 {
				fatal(fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s",
					len(regressions), *maxRegress*100, *compare))
			}
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %.0f%% of %s\n",
				len(minNsByName(results)), *maxRegress*100, *compare)
			return
		}
	}

	report := Report{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Commit:      gitCommit(),
		BenchRegexp: *bench,
		Package:     *pkg,
		Benchmarks:  results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
	if len(regressions) > 0 {
		fatal(fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s",
			len(regressions), *maxRegress*100, *compare))
	}
}

// loadReport reads a previously emitted baseline document.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: baseline holds no benchmarks", path)
	}
	return &r, nil
}

// minNsByName collapses -count repetitions to the minimum ns/op per
// benchmark name — the repetition least disturbed by scheduler noise,
// the standard way to compare benchmark runs.
func minNsByName(results []Result) map[string]float64 {
	min := map[string]float64{}
	for _, r := range results {
		if v, ok := min[r.Name]; !ok || r.NsPerOp < v {
			min[r.Name] = r.NsPerOp
		}
	}
	return min
}

// findRegressions compares fresh results against a baseline by minimum
// ns/op and describes every benchmark that slowed down by more than
// maxRegress (a fraction: 0.25 means +25%). Zero-allocation paths are
// guarded absolutely: a benchmark whose baseline records 0 allocs/op
// fails the moment any repetition allocates — alloc counts are
// deterministic, so unlike ns/op there is no noise tolerance to grant.
// Benchmarks present on only one side are skipped — renames and new
// benchmarks must not fail the guard.
func findRegressions(baseline, current []Result, maxRegress float64) []string {
	base := minNsByName(baseline)
	cur := minNsByName(current)
	baseAllocs := minAllocsByName(baseline)
	curAllocs := minAllocsByName(current)
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		b, c := base[name], cur[name]
		if b <= 0 {
			continue
		}
		if ratio := c / b; ratio > 1+maxRegress {
			out = append(out, fmt.Sprintf("REGRESSION %s: %.0f ns/op -> %.0f ns/op (%+.0f%%)",
				name, b, c, (ratio-1)*100))
		}
		if baseAllocs[name] == 0 && curAllocs[name] > 0 {
			out = append(out, fmt.Sprintf("REGRESSION %s: zero-alloc path now allocates (%d allocs/op)",
				name, curAllocs[name]))
		}
	}
	return out
}

// minAllocsByName collapses -count repetitions to the minimum allocs/op
// per benchmark name. The minimum, not the mean: a path is zero-alloc
// only if some full repetition ran without allocating, and stray
// allocations in other reps (lazy warmup, pool refills after GC) must
// not mask a genuinely clean path — nor may a clean first rep excuse a
// steady-state leak, which the ns/op guard would surface instead.
func minAllocsByName(results []Result) map[string]int64 {
	min := map[string]int64{}
	for _, r := range results {
		if v, ok := min[r.Name]; !ok || r.AllocsPerOp < v {
			min[r.Name] = r.AllocsPerOp
		}
	}
	return min
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. Lines look like:
//
//	BenchmarkName-8   iterations   N ns/op [  B B/op   A allocs/op ]
func parseBench(out string) []Result {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, procs := splitProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: name, Procs: procs, Iterations: iters}
		// Remaining fields come in "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		if r.NsPerOp > 0 {
			results = append(results, r)
		}
	}
	return results
}

// splitProcs separates the -N GOMAXPROCS suffix from a benchmark name.
func splitProcs(s string) (name string, procs int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 1
	}
	p, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return s, 1
	}
	return s[:i], p
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
