// Command benchjson runs the repository's Go benchmarks and writes the
// parsed results as JSON, so the performance trajectory can be tracked
// commit over commit (the BENCH_*.json files referenced by the roadmap):
//
//	benchjson -out BENCH_query.json -bench 'BenchmarkQuery|BenchmarkTopK' [-pkg .] [-count 1]
//
// It shells out to `go test -run ^$ -bench ... -benchmem` and parses the
// standard benchmark output lines:
//
//	BenchmarkQuerySemSimMC-8   12345   9876 ns/op   12 B/op   3 allocs/op
//
// Entries carry ns/op, B/op and allocs/op per benchmark plus run
// metadata (Go version, GOMAXPROCS, timestamp, git commit when
// available).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	GeneratedAt time.Time `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	NumCPU      int       `json:"num_cpu"`
	Commit      string    `json:"commit,omitempty"`
	BenchRegexp string    `json:"bench_regexp"`
	Package     string    `json:"package"`
	Benchmarks  []Result  `json:"benchmarks"`
}

func main() {
	var (
		out   = flag.String("out", "BENCH_query.json", "output JSON path")
		bench = flag.String("bench", "BenchmarkQuery|BenchmarkTopK|BenchmarkSingleSource|BenchmarkBatch", "benchmark regexp passed to -bench")
		pkg   = flag.String("pkg", ".", "package to benchmark")
		count = flag.Int("count", 1, "benchmark repetitions (-count)")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$",
		"-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count), *pkg}
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatal(fmt.Errorf("go test -bench failed: %w", err))
	}

	results := parseBench(buf.String())
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched %q — output was:\n%s", *bench, buf.String()))
	}

	report := Report{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Commit:      gitCommit(),
		BenchRegexp: *bench,
		Package:     *pkg,
		Benchmarks:  results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. Lines look like:
//
//	BenchmarkName-8   iterations   N ns/op [  B B/op   A allocs/op ]
func parseBench(out string) []Result {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, procs := splitProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: name, Procs: procs, Iterations: iters}
		// Remaining fields come in "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		if r.NsPerOp > 0 {
			results = append(results, r)
		}
	}
	return results
}

// splitProcs separates the -N GOMAXPROCS suffix from a benchmark name.
func splitProcs(s string) (name string, procs int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 1
	}
	p, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return s, 1
	}
	return s[:i], p
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
