package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestFindRegressionsAllocGuard: a benchmark whose baseline proves a
// zero-allocation path must fail the drift guard as soon as any current
// repetition allocates, with no noise tolerance; paths that already
// allocated in the baseline stay governed by the ns/op ratio alone.
func TestFindRegressionsAllocGuard(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkQueryWarm", NsPerOp: 2000, AllocsPerOp: 0},
		{Name: "BenchmarkQueryWarm", NsPerOp: 2100, AllocsPerOp: 0},
		{Name: "BenchmarkTopK", NsPerOp: 50000, AllocsPerOp: 12},
	}
	current := []Result{
		{Name: "BenchmarkQueryWarm", NsPerOp: 2050, AllocsPerOp: 3},
		{Name: "BenchmarkTopK", NsPerOp: 51000, AllocsPerOp: 15},
	}
	regs := findRegressions(baseline, current, 0.25)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %v, want exactly the alloc guard", len(regs), regs)
	}
	if !strings.Contains(regs[0], "BenchmarkQueryWarm") || !strings.Contains(regs[0], "zero-alloc") {
		t.Fatalf("unexpected regression message %q", regs[0])
	}

	// A single clean repetition keeps the path zero-alloc: min, not mean.
	current = []Result{
		{Name: "BenchmarkQueryWarm", NsPerOp: 2050, AllocsPerOp: 2},
		{Name: "BenchmarkQueryWarm", NsPerOp: 2060, AllocsPerOp: 0},
	}
	if regs := findRegressions(baseline, current, 0.25); len(regs) != 0 {
		t.Fatalf("min-allocs rep is clean, got regressions %v", regs)
	}
}

// TestFindRegressionsNsGuard: the ns/op ratio guard still fires
// independently of the alloc guard, and both can report the same name.
func TestFindRegressionsNsGuard(t *testing.T) {
	baseline := []Result{{Name: "BenchmarkQueryWarm", NsPerOp: 1000, AllocsPerOp: 0}}
	current := []Result{{Name: "BenchmarkQueryWarm", NsPerOp: 1500, AllocsPerOp: 1}}
	regs := findRegressions(baseline, current, 0.25)
	if len(regs) != 2 {
		t.Fatalf("got %v, want one ns/op and one alloc regression", regs)
	}
}

// TestResultJSONAlwaysRecordsAllocs: zero B/op and allocs/op serialize
// as explicit fields — the recorded proof the drift guard keys on.
func TestResultJSONAlwaysRecordsAllocs(t *testing.T) {
	data, err := json.Marshal(Result{Name: "BenchmarkQueryWarm", NsPerOp: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"bytes_per_op":0`, `"allocs_per_op":0`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("marshaled result %s missing %s", data, field)
		}
	}
}
