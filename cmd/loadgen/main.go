// Command loadgen drives a running `semsim serve` instance with a
// deterministic seeded workload and reports throughput and latency
// percentiles as JSON. It is the measurement half of the serving SLO
// story: serve exports burn rates, loadgen supplies the load that makes
// them mean something.
//
//	loadgen -url http://127.0.0.1:6060 -graph g.hin -duration 10s \
//	        -concurrency 8 -mix query=70,topk=20,explain=10
//
// Two arrival models:
//
//	closed loop (default): -concurrency workers issue back-to-back
//	    requests — measures the server's capacity.
//	open loop (-qps N): requests arrive on a fixed schedule and latency
//	    is measured from the scheduled arrival, so queueing delay is
//	    visible (coordinated-omission-resistant).
//
// The node space is read from the same -graph file the server loads, so
// the workload only names nodes that exist. Before warmup the generator
// gates on /healthz returning 200 — a server still building its index
// answers 503 and loadgen waits instead of measuring the build.
//
// With -mutate-every the generator adds write traffic: one POST /mutate
// batch at the given cadence (a new node wired into the graph, extra
// edges, eventually removals), so the server's epoch-snapshot commit
// path is exercised while reads are in flight. The report gains
// mutations / mutation_failures / final_epoch fields.
//
// For CI use the -check-* flags assert report invariants (minimum
// throughput, p99 ceiling, 5xx budget, minimum committed mutation
// batches) and exit nonzero on violation, so shell harnesses need no
// JSON parsing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"semsim"
	"semsim/internal/loadgen"
)

func main() {
	var (
		baseURL     = flag.String("url", "", "base URL of the running semsim serve instance (required)")
		graphPath   = flag.String("graph", "", "HIN graph file the server was started with; supplies the node space (required)")
		duration    = flag.Duration("duration", 10*time.Second, "measured phase length")
		warmup      = flag.Duration("warmup", 2*time.Second, "warmup phase length (unmeasured traffic after /healthz turns ready)")
		concurrency = flag.Int("concurrency", 8, "worker count")
		qps         = flag.Float64("qps", 0, "target arrival rate; > 0 switches to open-loop mode")
		mixSpec     = flag.String("mix", "query=70,topk=20,explain=10", "endpoint mix as endpoint=weight pairs")
		k           = flag.Int("k", 10, "k for /topk requests")
		seed        = flag.Int64("seed", 1, "workload seed (same seed + same graph = same request sequence)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		readyWait   = flag.Duration("ready-timeout", 60*time.Second, "how long to wait for /healthz to turn ready")
		out         = flag.String("out", "", "write the JSON report here instead of stdout")

		mutateEvery = flag.Duration("mutate-every", 0, "POST a /mutate batch at this cadence alongside the read traffic (0 = off)")
		mutateLabel = flag.String("mutate-label", "co-purchase", "edge label the background mutation batches use")

		checkMinQPS       = flag.Float64("check-min-qps", 0, "exit 1 unless measured throughput is at least this (0 = no check)")
		checkMaxP99       = flag.Duration("check-max-p99", 0, "exit 1 if aggregate p99 exceeds this (0 = no check)")
		checkMax5xx       = flag.Int64("check-max-5xx", -1, "exit 1 if 5xx responses exceed this (-1 = no check)")
		checkMinMutations = flag.Int64("check-min-mutations", 0, "exit 1 unless at least this many /mutate batches committed (0 = no check)")
	)
	flag.Parse()
	if *baseURL == "" || *graphPath == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -url and -graph are required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := semsim.ReadGraph(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	nodes := make([]string, g.NumNodes())
	for i := range nodes {
		nodes[i] = g.NodeName(semsim.NodeID(i))
	}
	if len(nodes) == 0 {
		fatal("graph has no nodes")
	}

	mix, err := loadgen.ParseMix(*mixSpec)
	if err != nil {
		fatal(err)
	}
	runner, err := loadgen.NewRunner(loadgen.Options{
		BaseURL:      *baseURL,
		Workload:     &loadgen.Workload{Nodes: nodes, Mix: mix, K: *k},
		OpenLoop:     *qps > 0,
		TargetQPS:    *qps,
		Concurrency:  *concurrency,
		Duration:     *duration,
		Warmup:       *warmup,
		Seed:         *seed,
		Timeout:      *timeout,
		ReadyTimeout: *readyWait,
		MutateEvery:  *mutateEvery,
		MutateLabel:  *mutateLabel,
	})
	if err != nil {
		fatal(err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	rep, err := runner.Run(ctx)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer w.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}

	failed := false
	check := func(ok bool, format string, args ...any) {
		if !ok {
			failed = true
			fmt.Fprintf(os.Stderr, "loadgen: check failed: "+format+"\n", args...)
		}
	}
	if *checkMinQPS > 0 {
		check(rep.ThroughputQPS >= *checkMinQPS,
			"throughput %.1f qps < required %.1f", rep.ThroughputQPS, *checkMinQPS)
	}
	if *checkMaxP99 > 0 {
		check(rep.Latency.P99 <= checkMaxP99.Seconds(),
			"p99 %.6fs > ceiling %s", rep.Latency.P99, *checkMaxP99)
	}
	if *checkMax5xx >= 0 {
		check(rep.Status5xx <= *checkMax5xx,
			"%d 5xx responses > budget %d", rep.Status5xx, *checkMax5xx)
	}
	if *checkMinMutations > 0 {
		check(rep.Mutations >= *checkMinMutations,
			"%d mutation batches committed < required %d (%d failed)",
			rep.Mutations, *checkMinMutations, rep.MutationFailures)
		check(rep.MutationFailures == 0,
			"%d mutation batches failed", rep.MutationFailures)
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "loadgen:", v)
	os.Exit(1)
}
