package main

// Tests for the incident-diagnostics surface: per-request cost
// accounting in responses and /metrics, the flight recorder at
// /debug/flight, the heavy-hitters sketch at /debug/heavy, and the
// one-shot /debug/diag bundle plus its client-side unpack.

import (
	"archive/tar"
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semsim"
	"semsim/internal/obs/quality"
	"semsim/internal/promlint"
)

func get(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, rr.Code, rr.Body)
	}
	return rr
}

// TestServeQueryCostPayload: /query and /topk responses embed the cost
// accounting, and the counters reflect real work.
func TestServeQueryCostPayload(t *testing.T) {
	mux, _ := newTestMux(t, nil)
	var q struct {
		Cost semsim.Cost `json:"cost"`
	}
	if err := json.Unmarshal(get(t, mux, "/query?u=ada&v=ben").Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Cost.Pairs != 1 || q.Cost.KernelProbes == 0 {
		t.Errorf("/query cost = %+v, want pairs=1 and kernel probes > 0", q.Cost)
	}
	var tk struct {
		Cost semsim.Cost `json:"cost"`
	}
	if err := json.Unmarshal(get(t, mux, "/topk?u=ada&k=3").Body.Bytes(), &tk); err != nil {
		t.Fatal(err)
	}
	if tk.Cost.Pairs <= 1 {
		t.Errorf("/topk cost = %+v, want pairs > 1 (scans many candidates)", tk.Cost)
	}
}

// TestServeFlightEndpoint: every API request lands in the flight
// recorder; the dump is parseable NDJSON carrying request IDs, status
// and cost, with error requests classified.
func TestServeFlightEndpoint(t *testing.T) {
	mux, _ := newTestMux(t, nil)
	get(t, mux, "/query?u=ada&v=ben")
	get(t, mux, "/topk?u=ada&k=3")
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/query?u=ada&v=nobody", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown-node query: status %d", rr.Code)
	}

	dump := get(t, mux, "/debug/flight")
	if ct := dump.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("/debug/flight Content-Type = %q", ct)
	}
	type rec struct {
		Seq       uint64      `json:"seq"`
		Endpoint  string      `json:"endpoint"`
		RequestID string      `json:"request_id"`
		Status    int         `json:"status"`
		ErrClass  string      `json:"err_class"`
		LatencyNS int64       `json:"latency_ns"`
		Cost      semsim.Cost `json:"cost"`
	}
	var recs []rec
	sc := bufio.NewScanner(bytes.NewReader(dump.Body.Bytes()))
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("torn flight line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 3 {
		t.Fatalf("flight holds %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.RequestID == "" || r.LatencyNS <= 0 {
			t.Errorf("record %d incomplete: %+v", i, r)
		}
		if i > 0 && recs[i-1].Seq >= r.Seq {
			t.Errorf("records out of order: seq %d then %d", recs[i-1].Seq, r.Seq)
		}
	}
	if recs[0].Endpoint != "/query" || recs[0].Status != 200 || recs[0].Cost.Pairs != 1 {
		t.Errorf("first record = %+v", recs[0])
	}
	last := recs[2]
	if last.Status != http.StatusNotFound || last.ErrClass != "client" {
		t.Errorf("error record = %+v, want 404/client", last)
	}
}

// TestServeHeavyEndpoint: repeated traffic from one source dominates the
// heavy-hitters sketch.
func TestServeHeavyEndpoint(t *testing.T) {
	mux, _ := newTestMux(t, nil)
	for i := 0; i < 5; i++ {
		get(t, mux, "/query?u=ada&v=ben")
	}
	get(t, mux, "/query?u=ben&v=ada")

	var body struct {
		Capacity int `json:"capacity"`
		Tracked  int `json:"tracked"`
		Top      []struct {
			Key   string `json:"key"`
			Count int64  `json:"count"`
		} `json:"top"`
	}
	if err := json.Unmarshal(get(t, mux, "/debug/heavy?n=5").Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Tracked != 2 || len(body.Top) != 2 {
		t.Fatalf("heavy tracked=%d top=%d, want 2/2", body.Tracked, len(body.Top))
	}
	if body.Top[0].Key != "ada" || body.Top[0].Count <= body.Top[1].Count {
		t.Errorf("heavy top = %+v, want ada dominating", body.Top)
	}
}

// TestServeMetricsCostSeries: after costed traffic the /metrics scrape
// carries the semsim_query_cost_* histograms and the heavy-hitters
// series, and the whole exposition stays promlint-clean.
func TestServeMetricsCostSeries(t *testing.T) {
	mux, _ := newTestMux(t, nil)
	get(t, mux, "/query?u=ada&v=ben")
	get(t, mux, "/topk?u=ada&k=3")

	body := get(t, mux, "/metrics").Body.String()
	for _, series := range []string{
		"semsim_query_cost_walk_steps",
		"semsim_query_cost_so_hits",
		"semsim_query_cost_so_misses",
		"semsim_query_cost_kernel_probes",
		"semsim_heavy_observations_total",
		"semsim_heavy_tracked_keys",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	if problems := promlint.Lint(strings.NewReader(body)); len(problems) > 0 {
		t.Errorf("promlint problems on /metrics: %v", problems)
	}
}

// TestServeDiagBundleRoundTrip: /debug/diag streams a tar.gz whose
// entries unpack through the diag subcommand's extractor, every
// required entry is present and non-empty, and the flight dump inside
// the bundle joins to the query log by request ID.
func TestServeDiagBundleRoundTrip(t *testing.T) {
	var qbuf bytes.Buffer
	reg := semsim.NewMetrics()
	qlog := quality.NewQueryLog(&qbuf, reg)
	mux, _ := newTestMux(t, qlog)
	get(t, mux, "/query?u=ada&v=ben")
	get(t, mux, "/topk?u=ben&k=2")

	rr := get(t, mux, "/debug/diag")
	if ct := rr.Header().Get("Content-Type"); ct != "application/gzip" {
		t.Errorf("/debug/diag Content-Type = %q", ct)
	}

	dir := t.TempDir()
	var report bytes.Buffer
	n, err := unpackDiag(bytes.NewReader(rr.Body.Bytes()), dir, &report)
	if err != nil {
		t.Fatalf("unpackDiag: %v", err)
	}
	want := []string{
		"metrics.prom", "expvar.json", "flight.ndjson", "traces.ndjson",
		"profiles.json", "slo.json", "heavy.json", "buildinfo.json",
	}
	if n != len(want) {
		t.Fatalf("bundle holds %d entries, want %d (report: %s)", n, len(want), report.String())
	}
	// traces.ndjson may legitimately be empty (no sampler configured
	// here); everything else must carry content.
	mayBeEmpty := map[string]bool{"traces.ndjson": true}
	for _, name := range want {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("bundle entry %s missing: %v", name, err)
		}
		if len(data) == 0 && !mayBeEmpty[name] {
			t.Errorf("bundle entry %s is empty", name)
		}
	}

	var build struct {
		Backend string `json:"backend"`
		Go      string `json:"go"`
		Nodes   int    `json:"nodes"`
	}
	data, _ := os.ReadFile(filepath.Join(dir, "buildinfo.json"))
	if err := json.Unmarshal(data, &build); err != nil {
		t.Fatalf("buildinfo.json: %v", err)
	}
	if build.Backend == "" || build.Go == "" || build.Nodes == 0 {
		t.Errorf("buildinfo incomplete: %+v", build)
	}

	var slo struct {
		Enabled bool `json:"enabled"`
	}
	data, _ = os.ReadFile(filepath.Join(dir, "slo.json"))
	if err := json.Unmarshal(data, &slo); err != nil {
		t.Fatalf("slo.json: %v", err)
	}
	if slo.Enabled {
		t.Error("slo.json claims enabled with no tracker configured")
	}

	// Join check: every flight request ID from a logged endpoint appears
	// in the query log, so an operator can pivot bundle → log.
	qids := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(qbuf.Bytes()))
	for sc.Scan() {
		var ev struct {
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		qids[ev.RequestID] = true
	}
	if len(qids) != 2 {
		t.Fatalf("query log holds %d request IDs, want 2", len(qids))
	}
	fdata, _ := os.ReadFile(filepath.Join(dir, "flight.ndjson"))
	joined := 0
	sc = bufio.NewScanner(bytes.NewReader(fdata))
	for sc.Scan() {
		var r struct {
			Endpoint  string `json:"endpoint"`
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		if r.Endpoint == "/query" || r.Endpoint == "/topk" {
			if !qids[r.RequestID] {
				t.Errorf("flight record %s (%s) has no query-log line", r.RequestID, r.Endpoint)
			}
			joined++
		}
	}
	if joined != 2 {
		t.Errorf("flight dump joined %d records to the query log, want 2", joined)
	}
}

// newGzTar writes a gzip-compressed tar with the given entries into w.
func newGzTar(t *testing.T, w io.Writer, entries map[string][]byte) {
	t.Helper()
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	for name, data := range entries {
		if err := tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644, Size: int64(len(data))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUnpackDiagRejectsTraversal: hostile entry names cannot escape the
// output directory.
func TestUnpackDiagRejectsTraversal(t *testing.T) {
	var raw bytes.Buffer
	newGzTar(t, &raw, map[string][]byte{
		"../../escape.txt": []byte("nope"),
		"ok.txt":           []byte("fine"),
	})
	dir := t.TempDir()
	if _, err := unpackDiag(bytes.NewReader(raw.Bytes()), dir, io.Discard); err != nil {
		t.Fatalf("unpackDiag: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "escape.txt")); err != nil {
		t.Error("traversal entry was not flattened into dir")
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(filepath.Dir(dir)), "escape.txt")); err == nil {
		t.Error("traversal entry escaped the output directory")
	}
}
