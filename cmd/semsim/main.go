// Command semsim answers similarity queries over a HIN stored in the text
// graph format (see internal/hin). Subcommands:
//
//	semsim info   -graph g.hin
//	semsim query  -graph g.hin -u NAME -v NAME [flags]
//	semsim topk   -graph g.hin -u NAME -k 10 [flags]
//	semsim single -graph g.hin -u NAME -k 10 [flags]   (inverted-index single-source)
//	semsim exact  -graph g.hin -top 20 [flags]
//	semsim serve  -graph g.hin -debug-addr :6060       (resident HTTP server, see serve.go)
//	semsim convert -graph g.hin -in w.walks -out w2.walks -walk-format v3
//	semsim diag   -addr HOST:PORT [-out DIR]           (fetch and unpack /debug/diag, see diag.go)
//
// Shared flags: -c decay factor, -theta pruning threshold, -nw walks per
// node, -t walk length, -sling SO-cache cutoff, -seed, -backend engine
// backend (mc|reduced|exact|linear), -autoplan adaptive top-k planning. The
// walk index can be persisted across runs with -save-walks FILE /
// -load-walks FILE; -walk-format picks the on-disk layout (v2 flat, v3
// compressed blocks — the default), convert re-encodes an existing file
// between the two, and -lazy-walks / -walk-cache-bytes serve a v3 file
// demand-paged through a bounded block cache instead of loading it
// whole. serve additionally takes -debug-addr (required),
// -warmup, -shadow-rate/-shadow-backend (sampled shadow verification on
// an exact reference backend), -query-log/-query-log-max-bytes (JSON
// wide-event log with optional size rotation), -health-interval
// (runtime telemetry cadence), -slo-latency/-slo-objective/-slo-window
// (multi-window burn-rate SLO gauges), -trace-log/-trace-sample
// (sampled span-trace export) and -profile-p99 and friends
// (anomaly-triggered CPU+heap profiling at /debug/profiles); it mounts
// /metrics, /debug/vars, /debug/pprof/ and /healthz next to the query
// API (including /explain estimate-quality traces), and shuts down
// gracefully on SIGINT/SIGTERM (in-flight requests drain, a final
// metrics snapshot is logged).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"semsim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	// diag talks to a running server; it needs no graph, so it parses its
	// own flags and exits before the -graph requirement below.
	if cmd == "diag" {
		if err := runDiag(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		graphPath  = fs.String("graph", "", "path to the HIN text file (required)")
		uName      = fs.String("u", "", "first node name")
		vName      = fs.String("v", "", "second node name")
		k          = fs.Int("k", 10, "top-k size")
		top        = fs.Int("top", 20, "pairs to print for exact")
		c          = fs.Float64("c", 0.6, "decay factor")
		theta      = fs.Float64("theta", 0.05, "pruning threshold (0 disables)")
		nw         = fs.Int("nw", 150, "walks per node")
		t          = fs.Int("t", 15, "walk length")
		sling      = fs.Float64("sling", 0.1, "SLING SO-cache cutoff (0 disables)")
		iters      = fs.Int("iters", 10, "iterations for exact")
		seed       = fs.Int64("seed", 1, "random seed")
		saveWalks  = fs.String("save-walks", "", "persist the walk index to this file after building")
		loadWalks  = fs.String("load-walks", "", "load a previously saved walk index instead of sampling")
		walkFormat = fs.String("walk-format", "v3",
			"on-disk walk format for -save-walks and convert: "+strings.Join(semsim.WalkFormats(), "|"))
		lazyWalks = fs.Bool("lazy-walks", false,
			"serve walks demand-paged from the -load-walks file (v3 format) instead of loading it whole")
		walkCache = fs.Int64("walk-cache-bytes", 0,
			"decoded-block cache budget for -lazy-walks (0 = 64 MiB default)")
		convertIn  = fs.String("in", "", "convert: source walk file")
		convertOut = fs.String("out", "", "convert: destination walk file")
		backend    = fs.String("backend", "mc", "engine backend: "+strings.Join(semsim.Backends(), "|"))
		autoplan   = fs.Bool("autoplan", false, "let the adaptive planner pick the top-k strategy per query")
		kernel     = fs.String("kernel", "auto", "semantic kernel: auto|on|off")
		kernelMem  = fs.Int64("kernel-budget", 0, "dense kernel memory budget in bytes (0 = 64 MiB default)")
		debugAddr  = fs.String("debug-addr", "", "serve: listen address for the HTTP/debug server (e.g. :6060)")
		warmup     = fs.Int("warmup", 4, "serve: warm-up queries run at startup to populate the metrics")
		shadowRate = fs.Int("shadow-rate", 256,
			"serve: re-score 1 in N queries on an exact reference backend off the hot path (0 disables shadow verification)")
		shadowBackend = fs.String("shadow-backend", "",
			"serve: reference backend for shadow verification (exact|reduced|linear; empty picks by graph size)")
		queryLog = fs.String("query-log", "",
			"serve: append one JSON wide event per request to this file ('-' = stdout)")
		queryLogMax = fs.Int64("query-log-max-bytes", 0,
			"serve: rotate the query log when it would exceed this size (0 = no rotation)")
		queryLogGens = fs.Int("query-log-max-generations", 1,
			"serve: rotated query-log generations to keep (PATH.1 newest .. PATH.N oldest)")
		healthEvery = fs.Duration("health-interval", 0,
			"serve: runtime health poll interval (0 = 10s default)")
		sloLatency = fs.Duration("slo-latency", 0,
			"serve: latency SLO threshold; requests slower than this burn the error budget (0 = SLO tracking off)")
		sloObjective = fs.Float64("slo-objective", 0.99,
			"serve: SLO objective as a good-request fraction in (0,1)")
		sloWindow = fs.Duration("slo-window", 5*time.Minute,
			"serve: short burn-rate window (the long window is 12x this)")
		traceLog = fs.String("trace-log", "",
			"serve: append sampled span traces as JSON lines to this file ('-' = stdout)")
		traceSample = fs.Float64("trace-sample", 0.01,
			"serve: fraction of requests to trace into -trace-log")
		profileP99 = fs.Duration("profile-p99", 0,
			"serve: capture a CPU+heap profile pair into /debug/profiles when the inter-poll query p99 exceeds this (0 = off)")
		profileInterval = fs.Duration("profile-interval", 0,
			"serve: anomaly profiler poll interval (0 = 10s default)")
		profileCooldown = fs.Duration("profile-cooldown", 0,
			"serve: minimum spacing between anomaly captures (0 = 5m default)")
		profileRing = fs.Int("profile-ring", 0,
			"serve: anomaly capture ring size (0 = 4 default)")
	)
	fs.Parse(os.Args[2:])
	if *graphPath == "" {
		fatal("missing -graph")
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := semsim.ReadGraph(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	tax, err := semsim.BuildTaxonomy(g, semsim.TaxonomyOptions{})
	if err != nil {
		fatal(err)
	}
	lin := semsim.NewLin(tax)

	node := func(name string) semsim.NodeID {
		id, ok := g.NodeByName(name)
		if !ok {
			fatal(fmt.Sprintf("unknown node %q", name))
		}
		return id
	}
	buildIndex := func(meetIndex bool) *semsim.Index {
		opts := semsim.IndexOptions{
			NumWalks: *nw, WalkLength: *t, C: *c, Theta: *theta,
			SLINGCutoff: *sling, Seed: *seed, Parallel: true,
			MeetIndex: meetIndex,
			Backend:   *backend, AutoPlan: *autoplan,
			SemanticKernel: *kernel, KernelMemoryBudget: *kernelMem,
			LazyWalks: *lazyWalks, WalkCacheBytes: *walkCache,
		}
		var idx *semsim.Index
		var err error
		if *loadWalks != "" {
			idx, err = semsim.OpenIndexFile(*loadWalks, g, lin, opts)
		} else {
			if *lazyWalks {
				fatal("-lazy-walks requires -load-walks (a freshly sampled index is resident)")
			}
			idx, err = semsim.BuildIndex(g, lin, opts)
		}
		if err != nil {
			fatal(err)
		}
		if *saveWalks != "" {
			wf, err := os.Create(*saveWalks)
			if err != nil {
				fatal(err)
			}
			if err := idx.SaveWalksFormat(wf, *walkFormat); err != nil {
				fatal(err)
			}
			if err := wf.Close(); err != nil {
				fatal(err)
			}
		}
		return idx
	}

	switch cmd {
	case "info":
		st := g.Stats()
		fmt.Printf("nodes: %d\nedges: %d\nlabels: %d\navg in-degree: %.2f\nmax in-degree: %d\n",
			st.Nodes, st.Edges, st.Labels, st.AvgInDeg, st.MaxInDeg)
		fmt.Printf("taxonomy depth: %d, broken cycles: %d\n", tax.MaxDepth(), tax.BrokenCycles())
		fmt.Printf("decay upper bound (sampled 10k pairs): %.4f\n",
			semsim.DecayUpperBound(g, lin, 10000))
	case "query":
		if *uName == "" || *vName == "" {
			fatal("query needs -u and -v")
		}
		u, v := node(*uName), node(*vName)
		idx := buildIndex(false)
		fmt.Printf("sem(%s,%s)     = %.6f\n", *uName, *vName, lin.Sim(u, v))
		fmt.Printf("SemSim(%s,%s)  = %.6f\n", *uName, *vName, idx.Query(u, v))
		fmt.Printf("SimRank(%s,%s) = %.6f\n", *uName, *vName, idx.SimRankQuery(u, v))
	case "topk":
		if *uName == "" {
			fatal("topk needs -u")
		}
		u := node(*uName)
		idx := buildIndex(false)
		for i, s := range idx.TopK(u, *k) {
			fmt.Printf("%2d. %-30s %.6f\n", i+1, g.NodeName(s.Node), s.Score)
		}
	case "single":
		if *uName == "" {
			fatal("single needs -u")
		}
		u := node(*uName)
		idx := buildIndex(true)
		ss, err := idx.SingleSource(u)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d nodes with nonzero estimates; top %d:\n", len(ss), *k)
		for i, s := range idx.TopK(u, *k) {
			fmt.Printf("%2d. %-30s %.6f\n", i+1, g.NodeName(s.Node), s.Score)
		}
	case "convert":
		if *convertIn == "" || *convertOut == "" {
			fatal("convert needs -in and -out")
		}
		in, err := os.Open(*convertIn)
		if err != nil {
			fatal(err)
		}
		out, err := os.Create(*convertOut)
		if err != nil {
			fatal(err)
		}
		written, err := semsim.ConvertWalks(in, g, out, *walkFormat)
		in.Close()
		if err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "semsim: convert: wrote %s (%s, %d bytes)\n",
			*convertOut, *walkFormat, written)
	case "serve":
		if *debugAddr == "" {
			fatal("serve needs -debug-addr")
		}
		err := runServe(g, lin, serveConfig{
			debugAddr:        *debugAddr,
			warmup:           *warmup,
			walksPath:        *loadWalks,
			queryLogPath:     *queryLog,
			queryLogMaxBytes: *queryLogMax,
			queryLogMaxGens:  *queryLogGens,
			healthInterval:   *healthEvery,
			sloLatency:       *sloLatency,
			sloObjective:     *sloObjective,
			sloWindow:        *sloWindow,
			traceLogPath:     *traceLog,
			traceSample:      *traceSample,
			profileP99:       *profileP99,
			profileInterval:  *profileInterval,
			profileCooldown:  *profileCooldown,
			profileRing:      *profileRing,
			opts: semsim.IndexOptions{
				NumWalks: *nw, WalkLength: *t, C: *c, Theta: *theta,
				SLINGCutoff: *sling, Seed: *seed, Parallel: true,
				Backend: *backend, AutoPlan: *autoplan,
				SemanticKernel: *kernel, KernelMemoryBudget: *kernelMem,
				ShadowRate: *shadowRate, ShadowBackend: *shadowBackend,
				LazyWalks: *lazyWalks, WalkCacheBytes: *walkCache,
			},
		}, nil)
		if err != nil {
			fatal(err)
		}
	case "exact":
		res, err := semsim.Exact(g, lin, semsim.ExactOptions{C: *c, MaxIterations: *iters, Parallel: true})
		if err != nil {
			fatal(err)
		}
		type pair struct {
			u, v  semsim.NodeID
			score float64
		}
		var best []pair
		for u := 0; u < g.NumNodes(); u++ {
			for v := u + 1; v < g.NumNodes(); v++ {
				best = append(best, pair{semsim.NodeID(u), semsim.NodeID(v),
					res.Scores.At(semsim.NodeID(u), semsim.NodeID(v))})
			}
		}
		for i := 0; i < len(best); i++ {
			for j := i + 1; j < len(best); j++ {
				if best[j].score > best[i].score {
					best[i], best[j] = best[j], best[i]
				}
			}
			if i >= *top-1 {
				break
			}
		}
		limit := *top
		if limit > len(best) {
			limit = len(best)
		}
		for i := 0; i < limit; i++ {
			fmt.Printf("%2d. %-25s %-25s %.6f\n", i+1,
				g.NodeName(best[i].u), g.NodeName(best[i].v), best[i].score)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: semsim {info|query|topk|single|exact|serve|convert} -graph FILE [flags]")
	fmt.Fprintln(os.Stderr, "       semsim diag -addr HOST:PORT [-out DIR]")
}

func fatal(v interface{}) {
	fmt.Fprintln(os.Stderr, "semsim:", v)
	os.Exit(1)
}
