package main

// The diag subcommand pulls the one-shot diagnostics bundle from a
// running serve instance and unpacks it locally:
//
//	semsim diag -addr 127.0.0.1:6060 -out /tmp/diag
//
// It fetches /debug/diag (a tar.gz of every observability surface —
// metrics exposition, expvar, the flight-recorder dump, retained
// traces, anomaly-profile index, SLO state, heavy hitters, build
// identity), writes each entry under -out (default semsim-diag-ADDR in
// the working directory) and prints a per-entry size summary, so "grab
// me everything off that box" is one command during an incident.

import (
	"archive/tar"
	"compress/gzip"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// maxDiagEntry bounds a single unpacked bundle entry; every entry is a
// bounded ring or snapshot server-side, so anything larger means a
// corrupt or hostile archive.
const maxDiagEntry = 64 << 20

func runDiag(args []string) error {
	fs := flag.NewFlagSet("diag", flag.ExitOnError)
	addr := fs.String("addr", "", "serve instance to pull diagnostics from (HOST:PORT, required)")
	out := fs.String("out", "", "directory to unpack the bundle into (default semsim-diag-ADDR)")
	timeout := fs.Duration("timeout", 30*time.Second, "fetch timeout")
	fs.Parse(args)
	if *addr == "" {
		return errors.New("diag needs -addr HOST:PORT")
	}
	dir := *out
	if dir == "" {
		dir = "semsim-diag-" + strings.NewReplacer(":", "-", "/", "-").Replace(*addr)
	}

	url := "http://" + *addr + "/debug/diag"
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch %s: %s", url, resp.Status)
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n, err := unpackDiag(resp.Body, dir, os.Stdout)
	if err != nil {
		return fmt.Errorf("unpack bundle: %w", err)
	}
	fmt.Printf("semsim: diag: %d entries unpacked into %s\n", n, dir)
	return nil
}

// unpackDiag extracts a diag tar.gz stream into dir, printing one line
// per entry to report. Entry names are sanitized to their base name —
// the bundle is flat by construction, and this keeps a malicious
// archive from escaping dir.
func unpackDiag(r io.Reader, dir string, report io.Writer) (int, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return 0, err
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	n := 0
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		name := filepath.Base(filepath.Clean(hdr.Name))
		if name == "." || name == ".." || name == "/" {
			continue
		}
		dst := filepath.Join(dir, name)
		f, err := os.Create(dst)
		if err != nil {
			return n, err
		}
		written, err := io.Copy(f, io.LimitReader(tr, maxDiagEntry))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return n, fmt.Errorf("write %s: %w", dst, err)
		}
		fmt.Fprintf(report, "semsim: diag: %-16s %8d bytes\n", name, written)
		n++
	}
}
