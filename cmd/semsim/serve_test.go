package main

// Smoke test for the serve subcommand, run by ci.sh tier 1: starts the
// real serve path (index build, warm-up, listener, mux) on an ephemeral
// port, scrapes /metrics, /debug/vars and /debug/pprof/, and asserts the
// core series are populated.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"semsim"
)

// smokeGraph builds a small two-community co-authorship network with a
// taxonomy, enough for nonzero similarities and cache traffic.
func smokeGraph(t *testing.T) (*semsim.Graph, semsim.Measure) {
	t.Helper()
	b := semsim.NewGraphBuilder()
	field := b.AddNode("Field", "category")
	db := b.AddNode("Databases", "field")
	ml := b.AddNode("MachineLearning", "field")
	cat := b.AddNode("Author", "category")
	isa := func(c, p semsim.NodeID) {
		b.AddEdge(c, p, "is-a", 1)
		b.AddEdge(p, c, "has-instance", 1)
	}
	isa(db, field)
	isa(ml, field)
	names := []string{"ada", "ben", "cho", "dee", "eve", "fay"}
	authors := make([]semsim.NodeID, len(names))
	for i, n := range names {
		authors[i] = b.AddNode(n, "author")
		isa(authors[i], cat)
		topic := db
		if i >= 3 {
			topic = ml
		}
		b.AddUndirected(authors[i], topic, "interest", 2)
	}
	for i := 1; i < len(authors); i++ {
		b.AddUndirected(authors[i-1], authors[i], "co-author", 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tax, err := semsim.BuildTaxonomy(g, semsim.TaxonomyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g, semsim.NewLin(tax)
}

func TestServeSmoke(t *testing.T) {
	g, lin := smokeGraph(t)
	stop := make(chan struct{})
	var logbuf bytes.Buffer
	cfg := serveConfig{
		debugAddr: "127.0.0.1:0",
		warmup:    8,
		opts: semsim.IndexOptions{
			NumWalks: 80, WalkLength: 8, C: 0.6, Theta: 0.05,
			SLINGCutoff: 0.1, Seed: 1,
		},
		stop: stop,
		logw: &logbuf,
	}
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runServe(g, lin, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not come up within 30s")
	}
	base := "http://" + addr

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	// A live query on top of the warm-up so every series is exercised.
	q := get("/query?u=ada&v=ben")
	var qr map[string]any
	if err := json.Unmarshal([]byte(q), &qr); err != nil {
		t.Fatalf("/query returned invalid JSON: %v\n%s", err, q)
	}
	if _, ok := qr["semsim"]; !ok {
		t.Fatalf("/query response missing semsim score: %s", q)
	}
	get("/topk?u=ada&k=3")

	metrics := get("/metrics")
	for _, series := range []string{
		"semsim_build_seconds_count",
		"semsim_walk_build_seconds_count",
		"semsim_queries_total",
		"semsim_query_seconds_bucket",
		"semsim_query_seconds_count",
		"semsim_topk_seconds_count",
		"semsim_cache_hit_ratio",
		"semsim_cache_hits_total",
		"semsim_theta_sem_skips_total",
		"semsim_theta_walk_caps_total",
		"semsim_walks_coupled_total",
		"semsim_build_backend_seconds_count",
		`semsim_plan_total{strategy="brute"}`,
		`semsim_plan_total{strategy="sem-bounded"}`,
		`semsim_plan_total{strategy="collision"}`,
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing core series %s", series)
		}
	}
	// Populated, not just present: the warm-up queries must have been
	// timed and the cache probed.
	for _, zero := range []string{"semsim_queries_total 0\n", "semsim_query_seconds_count 0\n"} {
		if strings.Contains(metrics, zero) {
			t.Errorf("/metrics series unexpectedly zero after warm-up: %s", strings.TrimSpace(zero))
		}
	}
	// The labeled plan counters share one metric family: exactly one
	// TYPE header, and at least one strategy chosen by the warm-up top-k.
	if n := strings.Count(metrics, "# TYPE semsim_plan_total counter"); n != 1 {
		t.Errorf("want exactly one TYPE header for semsim_plan_total, got %d", n)
	}
	planned := false
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "semsim_plan_total{") && !strings.HasSuffix(line, " 0") {
			planned = true
		}
	}
	if !planned {
		t.Error("/metrics shows no planner decisions after warm-up top-k traffic")
	}

	vars := get("/debug/vars")
	var ev map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &ev); err != nil {
		t.Fatalf("/debug/vars invalid JSON: %v", err)
	}
	if _, ok := ev["semsim"]; !ok {
		t.Error("/debug/vars missing the published semsim registry")
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
	get("/debug/pprof/goroutine?debug=1")

	snap := get("/snapshot")
	var s semsim.MetricsSnapshot
	if err := json.Unmarshal([]byte(snap), &s); err != nil {
		t.Fatalf("/snapshot invalid JSON: %v", err)
	}
	if s.Counters["semsim_queries_total"] == 0 {
		t.Error("/snapshot reports zero queries after warm-up traffic")
	}
	if h, ok := s.Histograms["semsim_query_seconds"]; !ok || h.Count == 0 {
		t.Error("/snapshot query latency histogram empty")
	}
	var planTotal int64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "semsim_plan_total{") {
			planTotal += v
		}
	}
	if planTotal == 0 {
		t.Error("/snapshot shows no planner strategy decisions")
	}

	// Graceful shutdown: closing the stop channel must drain and return
	// nil, logging a final snapshot of the traffic served.
	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down within 30s of stop")
	}
	log := logbuf.String()
	if !strings.Contains(log, "final metrics snapshot") {
		t.Errorf("shutdown log missing final metrics snapshot:\n%s", log)
	}
}

// TestServeGracefulShutdown drives the stop path end to end: traffic is
// served, the stop signal arrives, the server drains and returns nil,
// and the log carries the drain notice plus the final snapshot with the
// served traffic accounted for.
func TestServeGracefulShutdown(t *testing.T) {
	g, lin := smokeGraph(t)
	stop := make(chan struct{})
	var logbuf bytes.Buffer
	cfg := serveConfig{
		debugAddr: "127.0.0.1:0",
		warmup:    2,
		opts: semsim.IndexOptions{
			NumWalks: 40, WalkLength: 6, C: 0.6, Theta: 0.05,
			SLINGCutoff: 0.1, Seed: 1,
		},
		stop:            stop,
		shutdownTimeout: 10 * time.Second,
		logw:            &logbuf,
	}
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runServe(g, lin, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not come up within 30s")
	}

	// Serve one real request, then signal shutdown.
	resp, err := http.Get("http://" + addr + "/query?u=ada&v=eve")
	if err != nil {
		t.Fatalf("query before shutdown: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query before shutdown: status %d", resp.StatusCode)
	}
	close(stop)

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down within 30s of stop")
	}
	log := logbuf.String()
	for _, want := range []string{"shutdown signal received", "final snapshot:", "final metrics snapshot"} {
		if !strings.Contains(log, want) {
			t.Errorf("shutdown log missing %q:\n%s", want, log)
		}
	}
}

// TestServeMutate drives the dynamic-graph surface end to end: a POST
// /mutate batch (new node, wiring edges, an edge removal, a concept
// reweight) commits one epoch, the new node becomes queryable by name,
// the epoch gauge and commit metrics advance, and malformed batches map
// to the documented status codes.
func TestServeMutate(t *testing.T) {
	g, lin := smokeGraph(t)
	stop := make(chan struct{})
	defer close(stop)
	var logbuf bytes.Buffer
	cfg := serveConfig{
		debugAddr: "127.0.0.1:0",
		warmup:    2,
		opts: semsim.IndexOptions{
			NumWalks: 80, WalkLength: 8, C: 0.6, Theta: 0.05,
			SLINGCutoff: 0.1, Seed: 1,
		},
		stop: stop,
		logw: &logbuf,
	}
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runServe(g, lin, cfg, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not come up within 30s")
	}
	base := "http://" + addr

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+"/mutate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /mutate: %v", err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("POST /mutate: invalid JSON response %q: %v", raw, err)
		}
		return resp.StatusCode, m
	}

	// Before the mutation the new node must be unknown.
	if resp, err := http.Get(base + "/query?u=gil&v=ada"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("pre-mutation query for gil: status %d, want 404", resp.StatusCode)
		}
	}

	status, m := post(`{"ops": [
		{"op": "add_node", "name": "gil", "label": "author"},
		{"op": "add_edge", "from": "gil", "to": "ada", "label": "co-author", "weight": 1},
		{"op": "add_edge", "from": "ada", "to": "gil", "label": "co-author", "weight": 1},
		{"op": "remove_edge", "from": "ada", "to": "ben", "label": "co-author"},
		{"op": "update_concept_freq", "concept": "Databases", "freq": 0.5}
	]}`)
	if status != http.StatusOK {
		t.Fatalf("POST /mutate: status %d: %v", status, m)
	}
	if m["epoch"] != float64(1) || m["new_nodes"] != float64(1) {
		t.Fatalf("unexpected commit stats: %v", m)
	}

	// The committed node answers queries by name on the new epoch.
	resp, err := http.Get(base + "/query?u=gil&v=ada")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation query for gil: status %d: %s", resp.StatusCode, raw)
	}
	var qr map[string]any
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("query response: %v", err)
	}
	if _, ok := qr["semsim"].(float64); !ok {
		t.Fatalf("query response missing score: %s", raw)
	}

	// A second batch advances the epoch again.
	if status, m = post(`{"ops": [{"op": "add_edge", "from": "gil", "to": "ben", "label": "co-author"}]}`); status != http.StatusOK || m["epoch"] != float64(2) {
		t.Fatalf("second batch: status %d stats %v", status, m)
	}

	// Error mapping: unknown node 404, unknown op / empty batch 400,
	// non-POST 405.
	if status, _ = post(`{"ops": [{"op": "add_edge", "from": "nobody", "to": "ada", "label": "x"}]}`); status != http.StatusNotFound {
		t.Errorf("unknown node: status %d, want 404", status)
	}
	if status, _ = post(`{"ops": [{"op": "frobnicate"}]}`); status != http.StatusBadRequest {
		t.Errorf("unknown op: status %d, want 400", status)
	}
	if status, _ = post(`{"ops": []}`); status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", status)
	}
	resp, err = http.Get(base + "/mutate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /mutate: status %d, want 405", resp.StatusCode)
	}

	// The mutation surface is on the metrics page: epoch gauge at 2,
	// commit counters moving, repair cost accounted.
	metrics := func() string {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}()
	for _, want := range []string{
		"semsim_mutator_epoch 2",
		"semsim_commit_total 2",
		"semsim_commit_seconds_count 2",
		`semsim_http_requests_total{endpoint="/mutate"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s after mutations", want)
		}
	}
	if strings.Contains(metrics, "semsim_commit_walks_resampled_total 0\n") {
		t.Error("commit resampled no walks despite touching connected nodes")
	}
}
