package main

// Smoke test for the serve subcommand, run by ci.sh tier 1: starts the
// real serve path (index build, warm-up, listener, mux) on an ephemeral
// port, scrapes /metrics, /debug/vars and /debug/pprof/, and asserts the
// core series are populated.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"semsim"
)

// smokeGraph builds a small two-community co-authorship network with a
// taxonomy, enough for nonzero similarities and cache traffic.
func smokeGraph(t *testing.T) (*semsim.Graph, semsim.Measure) {
	t.Helper()
	b := semsim.NewGraphBuilder()
	field := b.AddNode("Field", "category")
	db := b.AddNode("Databases", "field")
	ml := b.AddNode("MachineLearning", "field")
	cat := b.AddNode("Author", "category")
	isa := func(c, p semsim.NodeID) {
		b.AddEdge(c, p, "is-a", 1)
		b.AddEdge(p, c, "has-instance", 1)
	}
	isa(db, field)
	isa(ml, field)
	names := []string{"ada", "ben", "cho", "dee", "eve", "fay"}
	authors := make([]semsim.NodeID, len(names))
	for i, n := range names {
		authors[i] = b.AddNode(n, "author")
		isa(authors[i], cat)
		topic := db
		if i >= 3 {
			topic = ml
		}
		b.AddUndirected(authors[i], topic, "interest", 2)
	}
	for i := 1; i < len(authors); i++ {
		b.AddUndirected(authors[i-1], authors[i], "co-author", 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tax, err := semsim.BuildTaxonomy(g, semsim.TaxonomyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g, semsim.NewLin(tax)
}

func TestServeSmoke(t *testing.T) {
	g, lin := smokeGraph(t)
	cfg := serveConfig{
		debugAddr: "127.0.0.1:0",
		warmup:    8,
		opts: semsim.IndexOptions{
			NumWalks: 80, WalkLength: 8, C: 0.6, Theta: 0.05,
			SLINGCutoff: 0.1, Seed: 1,
		},
	}
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runServe(g, lin, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not come up within 30s")
	}
	base := "http://" + addr

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	// A live query on top of the warm-up so every series is exercised.
	q := get("/query?u=ada&v=ben")
	var qr map[string]any
	if err := json.Unmarshal([]byte(q), &qr); err != nil {
		t.Fatalf("/query returned invalid JSON: %v\n%s", err, q)
	}
	if _, ok := qr["semsim"]; !ok {
		t.Fatalf("/query response missing semsim score: %s", q)
	}
	get("/topk?u=ada&k=3")

	metrics := get("/metrics")
	for _, series := range []string{
		"semsim_build_seconds_count",
		"semsim_walk_build_seconds_count",
		"semsim_queries_total",
		"semsim_query_seconds_bucket",
		"semsim_query_seconds_count",
		"semsim_topk_seconds_count",
		"semsim_cache_hit_ratio",
		"semsim_cache_hits_total",
		"semsim_theta_sem_skips_total",
		"semsim_theta_walk_caps_total",
		"semsim_walks_coupled_total",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing core series %s", series)
		}
	}
	// Populated, not just present: the warm-up queries must have been
	// timed and the cache probed.
	for _, zero := range []string{"semsim_queries_total 0\n", "semsim_query_seconds_count 0\n"} {
		if strings.Contains(metrics, zero) {
			t.Errorf("/metrics series unexpectedly zero after warm-up: %s", strings.TrimSpace(zero))
		}
	}

	vars := get("/debug/vars")
	var ev map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &ev); err != nil {
		t.Fatalf("/debug/vars invalid JSON: %v", err)
	}
	if _, ok := ev["semsim"]; !ok {
		t.Error("/debug/vars missing the published semsim registry")
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
	get("/debug/pprof/goroutine?debug=1")

	snap := get("/snapshot")
	var s semsim.MetricsSnapshot
	if err := json.Unmarshal([]byte(snap), &s); err != nil {
		t.Fatalf("/snapshot invalid JSON: %v", err)
	}
	if s.Counters["semsim_queries_total"] == 0 {
		t.Error("/snapshot reports zero queries after warm-up traffic")
	}
	if h, ok := s.Histograms["semsim_query_seconds"]; !ok || h.Count == 0 {
		t.Error("/snapshot query latency histogram empty")
	}
}
