package main

// Tests for the estimate-quality surface of the serve subcommand:
// structured JSON errors, the /explain endpoint, and the quality
// telemetry (shadow verifier, runtime health, query log) in /metrics.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"semsim"
	"semsim/internal/obs/quality"
)

// newTestMux builds the real serve mux over a small index, without the
// listener/shutdown machinery, for direct handler tests.
func newTestMux(t *testing.T, qlog *quality.QueryLog) (*http.ServeMux, *semsim.Metrics) {
	t.Helper()
	g, lin := smokeGraph(t)
	reg := semsim.NewMetrics()
	idx, err := semsim.BuildIndex(g, lin, semsim.IndexOptions{
		NumWalks: 60, WalkLength: 8, C: 0.6, Theta: 0.05,
		SLINGCutoff: 0.1, Seed: 7, Metrics: reg,
		MeetIndex: true, AutoPlan: true, // what runServe always enables
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	return newServeMux(idx, newServeObs(reg, qlog, nil, nil, nil, nil)), reg
}

// TestServeErrorShapes: every endpoint rejects bad input with the shared
// {"error": "..."} JSON shape and a meaningful status code.
func TestServeErrorShapes(t *testing.T) {
	mux, _ := newTestMux(t, nil)
	cases := []struct {
		name, path string
		status     int
		errSubstr  string
	}{
		{"query missing u", "/query?v=ben", http.StatusBadRequest, "missing ?u=NODE"},
		{"query missing v", "/query?u=ada", http.StatusBadRequest, "missing ?v=NODE"},
		{"query unknown u", "/query?u=nobody&v=ben", http.StatusNotFound, "unknown node nobody"},
		{"query unknown v", "/query?u=ada&v=nobody", http.StatusNotFound, "unknown node nobody"},
		{"explain missing u", "/explain?v=ben", http.StatusBadRequest, "missing ?u=NODE"},
		{"explain unknown v", "/explain?u=ada&v=ghost", http.StatusNotFound, "unknown node ghost"},
		{"topk missing u", "/topk", http.StatusBadRequest, "missing ?u=NODE"},
		{"topk bad k", "/topk?u=ada&k=banana", http.StatusBadRequest, "bad ?k"},
		{"topk negative k", "/topk?u=ada&k=-2", http.StatusBadRequest, "bad ?k"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := httptest.NewRecorder()
			mux.ServeHTTP(rr, httptest.NewRequest("GET", tc.path, nil))
			if rr.Code != tc.status {
				t.Fatalf("GET %s: status %d, want %d (body %s)", tc.path, rr.Code, tc.status, rr.Body)
			}
			if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("GET %s: Content-Type %q, want application/json", tc.path, ct)
			}
			var body struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
				t.Fatalf("GET %s: error body is not JSON: %v\n%s", tc.path, err, rr.Body)
			}
			if !strings.Contains(body.Error, tc.errSubstr) {
				t.Errorf("GET %s: error %q does not mention %q", tc.path, body.Error, tc.errSubstr)
			}
		})
	}
}

// TestServeExplainEndpoint: /explain returns the evidence payload with a
// score identical to /query and a well-formed confidence interval.
func TestServeExplainEndpoint(t *testing.T) {
	mux, reg := newTestMux(t, nil)

	do := func(path string) map[string]any {
		t.Helper()
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, rr.Code, rr.Body)
		}
		var m map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v", path, err)
		}
		return m
	}

	ex := do("/explain?u=ada&v=ben")
	q := do("/query?u=ada&v=ben")
	if ex["score"] != q["semsim"] {
		t.Errorf("/explain score %v != /query semsim %v", ex["score"], q["semsim"])
	}
	for _, key := range []string{"u_name", "v_name", "backend", "sem", "ci_low", "ci_high", "ci_confidence", "so_cache", "theta"} {
		if _, ok := ex[key]; !ok {
			t.Errorf("/explain payload missing %q: %v", key, ex)
		}
	}
	if ex["u_name"] != "ada" || ex["v_name"] != "ben" {
		t.Errorf("/explain names = %v/%v, want ada/ben", ex["u_name"], ex["v_name"])
	}
	lo, hi := ex["ci_low"].(float64), ex["ci_high"].(float64)
	score := ex["score"].(float64)
	if lo > score || score > hi {
		t.Errorf("/explain CI [%v,%v] does not contain score %v", lo, hi, score)
	}
	if ex["ci_confidence"].(float64) != 0.95 {
		t.Errorf("ci_confidence = %v, want 0.95", ex["ci_confidence"])
	}
	if n := reg.Snapshot().Counters["semsim_explain_total"]; n != 1 {
		t.Errorf("semsim_explain_total = %d after one /explain, want 1", n)
	}
}

// TestServeQueryLogEvents: with a query log attached, each served
// request emits one NDJSON wide event carrying endpoint, status and
// latency, and /explain events carry the CI width.
func TestServeQueryLogEvents(t *testing.T) {
	var logbuf bytes.Buffer
	reg0 := semsim.NewMetrics()
	qlog := quality.NewQueryLog(&logbuf, reg0)
	mux, _ := newTestMux(t, qlog)

	for _, path := range []string{"/query?u=ada&v=ben", "/explain?u=ada&v=eve", "/topk?u=ada&k=3"} {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, rr.Code)
		}
	}

	var events []quality.QueryEvent
	sc := bufio.NewScanner(&logbuf)
	for sc.Scan() {
		var ev quality.QueryEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("query log line is not JSON: %v\n%s", err, sc.Text())
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("query log holds %d events, want 3", len(events))
	}
	endpoints := map[string]quality.QueryEvent{}
	for _, ev := range events {
		endpoints[ev.Endpoint] = ev
		if ev.Status != http.StatusOK {
			t.Errorf("%s event status %d, want 200", ev.Endpoint, ev.Status)
		}
		if ev.Time.IsZero() || ev.LatencySeconds < 0 {
			t.Errorf("%s event missing timing: %+v", ev.Endpoint, ev)
		}
	}
	if ev, ok := endpoints["/explain"]; !ok {
		t.Error("no /explain wide event logged")
	} else if ev.CIWidth <= 0 {
		t.Errorf("/explain event CI width = %v, want > 0", ev.CIWidth)
	}
	if ev, ok := endpoints["/topk"]; !ok {
		t.Error("no /topk wide event logged")
	} else if ev.K != 3 || ev.Results == 0 || ev.Strategy == "" {
		t.Errorf("/topk event incomplete: %+v", ev)
	}
	if n := reg0.Snapshot().Counters["semsim_querylog_events_total"]; n != 3 {
		t.Errorf("semsim_querylog_events_total = %d, want 3", n)
	}
}

// TestServeQualityTelemetry runs the full serve path with the quality
// layer enabled — shadow verification at rate 1, a tight health poll and
// a query log — and asserts the telemetry all lands in /metrics.
func TestServeQualityTelemetry(t *testing.T) {
	g, lin := smokeGraph(t)
	stop := make(chan struct{})
	var logbuf bytes.Buffer
	cfg := serveConfig{
		debugAddr: "127.0.0.1:0",
		warmup:    8,
		opts: semsim.IndexOptions{
			NumWalks: 60, WalkLength: 8, C: 0.6, Theta: 0.05,
			SLINGCutoff: 0.1, Seed: 2,
			ShadowRate: 1,
		},
		healthInterval: 50 * time.Millisecond,
		stop:           stop,
		logw:           &logbuf,
	}
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runServe(g, lin, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not come up within 30s")
	}
	base := "http://" + addr

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	get("/query?u=ada&v=ben")
	get("/explain?u=ada&v=eve")
	// Give the shadow worker and the health ticker a beat.
	time.Sleep(150 * time.Millisecond)

	metrics := get("/metrics")
	for _, series := range []string{
		"semsim_shadow_checked_total",
		"semsim_shadow_abs_err_bucket",
		"semsim_shadow_worst_abs_err",
		"semsim_build_shadow_backend_seconds_count",
		"semsim_runtime_goroutines",
		"semsim_runtime_heap_alloc_bytes",
		"semsim_explain_total",
		"semsim_explain_seconds_count",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing quality series %s", series)
		}
	}
	if strings.Contains(metrics, "semsim_shadow_checked_total 0\n") {
		t.Error("shadow verifier checked nothing at rate 1")
	}
	if strings.Contains(metrics, "semsim_runtime_goroutines 0\n") {
		t.Error("runtime health gauges never polled")
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down within 30s of stop")
	}
}

// TestServeLinearSelfShadow serves on the linear backend while shadowing
// against "linear" at rate 1: the verifier must reuse the index's own
// backend (no second solve — the shadow-build histogram never registers)
// and, scoring every query against the matrix that produced it, count
// zero drift at any severity.
func TestServeLinearSelfShadow(t *testing.T) {
	g, lin := smokeGraph(t)
	stop := make(chan struct{})
	cfg := serveConfig{
		debugAddr: "127.0.0.1:0",
		warmup:    8,
		opts: semsim.IndexOptions{
			NumWalks: 60, WalkLength: 8, C: 0.6, Theta: 0.05,
			Seed:    2,
			Backend: "linear", ShadowRate: 1, ShadowBackend: "linear",
		},
		healthInterval: time.Hour, // health ticker out of the way
		stop:           stop,
	}
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runServe(g, lin, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not come up within 30s")
	}
	base := "http://" + addr

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	for _, path := range []string{
		"/query?u=ada&v=ben", "/query?u=ada&v=eve", "/query?u=ben&v=cho",
	} {
		get(path)
	}
	// Let the shadow worker drain its queue.
	time.Sleep(150 * time.Millisecond)

	metrics := get("/metrics")
	if strings.Contains(metrics, "semsim_build_shadow_backend_seconds") {
		t.Error("shadow built a second backend instead of reusing the linear index")
	}
	if strings.Contains(metrics, "semsim_shadow_checked_total 0\n") {
		t.Error("shadow verifier checked nothing at rate 1")
	}
	for _, severity := range []string{"warn", "critical"} {
		series := `semsim_shadow_drift_total{severity="` + severity + `"}`
		if !strings.Contains(metrics, series+" 0\n") {
			t.Errorf("self-shadowed linear backend drifted: %s not zero", series)
		}
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down within 30s of stop")
	}
}
