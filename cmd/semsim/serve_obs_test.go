package main

// Tests for the serving observability layer: readiness gating, request
// IDs, the SLO/trace/profile wiring and the new /metrics series.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"semsim"
	"semsim/internal/obs"
	"semsim/internal/obs/quality"
)

// TestHealthzReadiness is the readiness table test: before the swap the
// warming mux answers 503 everywhere (including /healthz); after it the
// real mux answers 200 on /healthz and serves the API.
func TestHealthzReadiness(t *testing.T) {
	warming := warmingMux()
	ready, _ := newTestMux(t, nil)
	cases := []struct {
		name string
		mux  *http.ServeMux
		path string
		want int
	}{
		{"warming healthz", warming, "/healthz", http.StatusServiceUnavailable},
		{"warming query", warming, "/query?u=ada&v=ben", http.StatusServiceUnavailable},
		{"warming metrics", warming, "/metrics", http.StatusServiceUnavailable},
		{"warming root", warming, "/", http.StatusServiceUnavailable},
		{"ready healthz", ready, "/healthz", http.StatusOK},
		{"ready query", ready, "/query?u=ada&v=ben", http.StatusOK},
		{"ready metrics", ready, "/metrics", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			tc.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, tc.path, nil))
			if rec.Code != tc.want {
				t.Fatalf("GET %s: status %d, want %d: %s", tc.path, rec.Code, tc.want, rec.Body.String())
			}
		})
	}
	// Warming responses must carry the structured JSON error shape, so a
	// probe and a confused client read the same thing.
	rec := httptest.NewRecorder()
	warming.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?u=ada&v=ben", nil))
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("warming /query body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if body["error"] == "" {
		t.Fatalf("warming /query body missing error field: %s", rec.Body.String())
	}
	if got := rec.Body.String(); !strings.Contains(strings.ToLower(got), "not ready") {
		t.Errorf("warming error does not say not ready: %s", got)
	}
	healthRec := httptest.NewRecorder()
	ready.ServeHTTP(healthRec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if got := strings.TrimSpace(healthRec.Body.String()); got != "ok" {
		t.Errorf("ready /healthz body = %q, want ok", got)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"abc-123", "abc-123"},
		{"A.b_C-9", "A.b_C-9"},
		{"has space", ""},
		{"quote\"", ""},
		{"newline\n", ""},
		{"unicode-é", ""},
		{strings.Repeat("x", 64), strings.Repeat("x", 64)},
		{strings.Repeat("x", 65), ""},
	}
	for _, tc := range cases {
		if got := sanitizeRequestID(tc.in); got != tc.want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestRequestIDAssignment: serve echoes a well-formed caller ID, mints
// one otherwise, and stamps the effective ID into the query log.
func TestRequestIDAssignment(t *testing.T) {
	var qbuf bytes.Buffer
	mux, _ := newTestMux(t, quality.NewQueryLog(&qbuf, nil))

	do := func(header string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/query?u=ada&v=ben", nil)
		if header != "" {
			req.Header.Set(requestIDHeader, header)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		return rec
	}

	// Caller-supplied well-formed ID: propagated verbatim.
	rec := do("gateway-42")
	if got := rec.Header().Get(requestIDHeader); got != "gateway-42" {
		t.Errorf("well-formed caller ID not propagated: header %q", got)
	}

	// No ID: one is minted and echoed.
	rec = do("")
	minted := rec.Header().Get(requestIDHeader)
	if minted == "" {
		t.Fatal("no request ID echoed for a headerless request")
	}
	if sanitizeRequestID(minted) != minted {
		t.Errorf("minted ID %q is not itself well-formed", minted)
	}

	// Malformed ID: replaced, not propagated.
	rec = do("bad id with spaces")
	if got := rec.Header().Get(requestIDHeader); got == "bad id with spaces" || got == "" {
		t.Errorf("malformed caller ID handling: header %q, want a fresh minted ID", got)
	}

	// Each minted ID is distinct.
	if again := do("").Header().Get(requestIDHeader); again == minted {
		t.Errorf("two minted IDs collide: %q", again)
	}

	// The query log carries the effective ID of each request.
	var ids []string
	for _, line := range strings.Split(strings.TrimSpace(qbuf.String()), "\n") {
		var ev quality.QueryEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("query log line not JSON: %v\n%s", err, line)
		}
		ids = append(ids, ev.RequestID)
	}
	if len(ids) != 4 {
		t.Fatalf("query log has %d events, want 4", len(ids))
	}
	if ids[0] != "gateway-42" {
		t.Errorf("query log event 0 request_id = %q, want gateway-42", ids[0])
	}
	if ids[1] != minted {
		t.Errorf("query log event 1 request_id = %q, want minted %q", ids[1], minted)
	}
	for i, id := range ids {
		if id == "" {
			t.Errorf("query log event %d has no request_id", i)
		}
	}
}

// TestServeObsEndToEnd runs the full serve path with the SLO tracker,
// trace log and anomaly profiler armed, and asserts the new /metrics
// series, the trace NDJSON and the /debug/profiles surface.
func TestServeObsEndToEnd(t *testing.T) {
	g, lin := smokeGraph(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.ndjson")
	stop := make(chan struct{})
	var logbuf bytes.Buffer
	cfg := serveConfig{
		debugAddr: "127.0.0.1:0",
		warmup:    4,
		opts: semsim.IndexOptions{
			NumWalks: 60, WalkLength: 8, C: 0.6, Theta: 0.05,
			SLINGCutoff: 0.1, Seed: 1,
		},
		sloLatency:   50 * time.Millisecond,
		sloObjective: 0.99,
		sloWindow:    time.Minute,
		traceLogPath: tracePath,
		traceSample:  1.0, // trace every request so the assertion is deterministic
		profileP99:   time.Second,
		stop:         stop,
		logw:         &logbuf,
	}
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runServe(g, lin, cfg, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not come up within 30s")
	}
	base := "http://" + addr

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}

	if code, body := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	for _, p := range []string{"/query?u=ada&v=ben", "/explain?u=ada&v=eve", "/topk?u=cho&k=3", "/query?u=ada&v=nobody"} {
		get(p)
	}

	_, metrics := get("/metrics")
	for _, series := range []string{
		`semsim_slo_latency_burn_rate{window="1m"}`,
		`semsim_slo_latency_burn_rate{window="12m"}`,
		`semsim_slo_error_burn_rate{window="1m"}`,
		"semsim_slo_requests_total 4",
		"semsim_slo_objective 0.99",
		"semsim_build_info{",
		`backend="mc"`,
		`walk_format="3"`,
		`walk_residency="resident"`,
		`semsim_http_requests_total{endpoint="/query"} 2`,
		`semsim_http_requests_total{endpoint="/explain"} 1`,
		`semsim_http_requests_total{endpoint="/topk"} 1`,
		"semsim_http_request_seconds_count 4",
		"semsim_profile_captures_total 0",
		"semsim_profile_p99_threshold_seconds 1",
		"semsim_tracelog_events_total 4",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	// build_info is a constant-1 gauge.
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "semsim_build_info{") && !strings.HasSuffix(line, " 1") {
			t.Errorf("semsim_build_info not constant 1: %s", line)
		}
	}

	// /debug/profiles serves the (empty) capture ring as JSON.
	code, body := get("/debug/profiles")
	if code != http.StatusOK {
		t.Fatalf("/debug/profiles = %d: %s", code, body)
	}
	var idx struct {
		Captures []json.RawMessage `json:"captures"`
	}
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatalf("/debug/profiles not JSON: %v\n%s", err, body)
	}
	if len(idx.Captures) != 0 {
		t.Errorf("capture ring not empty under healthy traffic: %s", body)
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down")
	}

	// The trace log holds one record per API request, each with a
	// request ID and at least one span.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 {
		t.Fatalf("trace log has %d records, want 4:\n%s", len(lines), data)
	}
	endpoints := map[string]int{}
	for _, line := range lines {
		var rec obs.TraceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace record not JSON: %v\n%s", err, line)
		}
		if rec.RequestID == "" {
			t.Errorf("trace record missing request_id: %s", line)
		}
		if rec.Time.IsZero() {
			t.Errorf("trace record missing timestamp: %s", line)
		}
		if len(rec.Spans) == 0 {
			t.Errorf("trace record has no spans: %s", line)
		}
		endpoints[rec.Name]++
	}
	if endpoints["/query"] != 2 || endpoints["/explain"] != 1 || endpoints["/topk"] != 1 {
		t.Errorf("trace names by endpoint = %v, want /query:2 /explain:1 /topk:1", endpoints)
	}
}

// TestServeQueryLogRotation drives runServe with a byte-bounded query
// log and asserts the rotation produced exactly one .1 generation.
func TestServeQueryLogRotation(t *testing.T) {
	g, lin := smokeGraph(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "query.ndjson")
	stop := make(chan struct{})
	var logbuf bytes.Buffer
	cfg := serveConfig{
		debugAddr: "127.0.0.1:0",
		warmup:    2,
		opts: semsim.IndexOptions{
			NumWalks: 40, WalkLength: 6, C: 0.6, Theta: 0.05,
			SLINGCutoff: 0.1, Seed: 1,
		},
		queryLogPath:     logPath,
		queryLogMaxBytes: 2048,
		stop:             stop,
		logw:             &logbuf,
	}
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runServe(g, lin, cfg, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not come up within 30s")
	}

	// Push enough events through to exceed 2 KiB of wide events.
	for i := 0; i < 40; i++ {
		resp, err := http.Get(fmt.Sprintf("http://%s/query?u=ada&v=ben", addr))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down")
	}

	cur, err := os.Stat(logPath)
	if err != nil {
		t.Fatalf("active query log missing: %v", err)
	}
	old, err := os.Stat(logPath + ".1")
	if err != nil {
		t.Fatalf("rotated generation missing: %v", err)
	}
	if cur.Size() > 2048 || old.Size() > 2048 {
		t.Errorf("generation over the byte bound: active %d, rotated %d", cur.Size(), old.Size())
	}
	// Both generations must still be valid NDJSON wide events.
	for _, p := range []string{logPath, logPath + ".1"} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			var ev quality.QueryEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("%s: bad NDJSON line: %v\n%s", p, err, line)
			}
		}
	}
}
