package main

// The serve subcommand keeps a built index resident and exposes it over
// HTTP together with the full observability surface:
//
//	semsim serve -graph g.hin -debug-addr :6060
//
//	/query?u=NAME&v=NAME   similarity of one pair (JSON)
//	/explain?u=NAME&v=NAME estimate-quality evidence: CI, variance, pruning (JSON)
//	/topk?u=NAME&k=10      top-k most similar nodes (JSON)
//	/snapshot              structured metrics snapshot (JSON)
//	/metrics               Prometheus text exposition
//	/debug/vars            expvar (the registry publishes under "semsim")
//	/debug/pprof/          net/http/pprof profiles
//	/healthz               liveness probe
//
// Errors are structured JSON ({"error": "..."}) with meaningful status
// codes: 400 for malformed parameters, 404 for unknown nodes (including
// engine bounds errors), 500 otherwise.
//
// Startup runs -warmup queries (default 4) so the latency histograms
// and cache statistics are populated before the first scrape. The
// server always builds the meet index and attaches the adaptive query
// planner, so /metrics carries the semsim_plan_total{strategy="..."}
// decision counters. The estimate-quality layer is on by default: the
// shadow verifier re-scores 1 in -shadow-rate queries on an exact
// reference backend (semsim_shadow_* series; 0 disables) and the
// runtime health collector polls memory/GC/goroutine gauges every
// -health-interval (semsim_runtime_* series). With -query-log PATH
// ("-" for stdout) every request additionally emits one structured
// JSON wide event with latency, scores, CI width and cache state.
//
// Shutdown is graceful: SIGINT/SIGTERM stops the listener, in-flight
// requests get shutdownTimeout (default 5s) to drain via
// http.Server.Shutdown, the shadow verifier drains its queue, and a
// final metrics snapshot is logged before the process exits.

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"semsim"
	"semsim/internal/obs/quality"
)

// serveConfig carries everything the serve subcommand needs besides the
// already-loaded graph and measure.
type serveConfig struct {
	debugAddr string
	warmup    int
	opts      semsim.IndexOptions
	// queryLogPath, when non-empty, streams one JSON wide event per
	// request to this file ("-" = stdout).
	queryLogPath string
	// healthInterval is the runtime health poll cadence (0 = default).
	healthInterval time.Duration
	// stop, when non-nil, replaces the SIGINT/SIGTERM trap — closing it
	// initiates the same graceful shutdown (used by tests).
	stop <-chan struct{}
	// shutdownTimeout bounds the in-flight request drain (default 5s).
	shutdownTimeout time.Duration
	// logw receives the startup trace and the final shutdown snapshot
	// (default os.Stderr).
	logw io.Writer
}

// runServe builds the instrumented index, warms it, and serves until
// the listener fails or a shutdown signal arrives; on a signal it
// drains in-flight requests, logs a final metrics snapshot and returns
// nil. When ready is non-nil the bound address is sent on it once the
// listener is up (used by the CI smoke test to serve on 127.0.0.1:0).
func runServe(g *semsim.Graph, sem semsim.Measure, cfg serveConfig, ready chan<- string) error {
	logw := cfg.logw
	if logw == nil {
		logw = os.Stderr
	}
	reg := semsim.NewMetrics()
	tr := semsim.NewTrace("serve-startup")
	cfg.opts.Metrics = reg
	cfg.opts.Trace = tr
	cfg.opts.MeetIndex = true
	cfg.opts.AutoPlan = true

	idx, err := semsim.BuildIndex(g, sem, cfg.opts)
	if err != nil {
		return err
	}
	defer idx.Close()

	var qlog *quality.QueryLog
	if cfg.queryLogPath != "" {
		w, closeLog, err := openQueryLog(cfg.queryLogPath)
		if err != nil {
			return err
		}
		defer closeLog()
		qlog = quality.NewQueryLog(w, reg)
	}
	health := quality.StartHealth(reg, cfg.healthInterval)
	defer health.Stop()

	// Warm-up traffic: populates the query histogram, the pruning
	// counters and the SLING cache so the first scrape is non-empty.
	n := g.NumNodes()
	for i := 0; i < cfg.warmup && n > 1; i++ {
		u := semsim.NodeID(i % n)
		v := semsim.NodeID((i + 1) % n)
		idx.Query(u, v)
	}
	if n > 1 {
		idx.TopK(0, 5)
	}
	fmt.Fprint(logw, tr.String())

	reg.PublishExpvar("semsim")
	mux := newServeMux(g, sem, idx, reg, qlog)

	l, err := net.Listen("tcp", cfg.debugAddr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "semsim: serving on http://%s (backend %s, metrics at /metrics, expvar at /debug/vars, pprof at /debug/pprof/)\n",
		l.Addr(), idx.Backend())
	if ready != nil {
		ready <- l.Addr().String()
	}

	// Graceful shutdown: a stop signal closes the listener, drains
	// in-flight requests for up to shutdownTimeout, then logs the final
	// metrics snapshot so the last scrape interval is never lost.
	stop := cfg.stop
	if stop == nil {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		stop = ctx.Done()
	}
	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	select {
	case err := <-errc:
		return err
	case <-stop:
	}
	timeout := cfg.shutdownTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	fmt.Fprintf(logw, "semsim: shutdown signal received, draining for up to %s\n", timeout)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	idx.Close() // drain pending shadow verifications before the final snapshot
	logFinalSnapshot(logw, idx)
	return shutdownErr
}

// openQueryLog resolves the -query-log destination: "-" streams to
// stdout, anything else appends to the named file.
func openQueryLog(path string) (io.Writer, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("semsim: open query log: %w", err)
	}
	return f, func() { f.Close() }, nil
}

// logFinalSnapshot writes a one-line summary plus the full structured
// metrics snapshot, so the traffic served since the last scrape is
// preserved in the process log.
func logFinalSnapshot(w io.Writer, idx *semsim.Index) {
	snap := idx.Snapshot()
	cache := idx.CacheSummary()
	fmt.Fprintf(w, "semsim: final snapshot: %d queries, %d top-k searches, cache %.0f%% hits (%d entries)\n",
		snap.Counters["semsim_queries_total"],
		snap.Counters["semsim_topk_total"],
		100*cache.HitRatio, cache.Entries)
	if data, err := json.Marshal(snap); err == nil {
		fmt.Fprintf(w, "semsim: final metrics snapshot: %s\n", data)
	}
}

// writeJSONError replies with the structured error shape every endpoint
// shares: {"error": "..."} under the given status code.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// errorStatus maps an index error to its HTTP status: engine bounds
// errors (unknown node) are the client's fault, everything else is
// ours.
func errorStatus(err error) int {
	if errors.Is(err, semsim.ErrNodeOutOfRange) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// newServeMux mounts the query API and the three debug surfaces.
func newServeMux(g *semsim.Graph, sem semsim.Measure, idx *semsim.Index, reg *semsim.Metrics, qlog *quality.QueryLog) *http.ServeMux {
	mux := http.NewServeMux()

	node := func(w http.ResponseWriter, r *http.Request, param string) (semsim.NodeID, bool) {
		name := r.URL.Query().Get(param)
		if name == "" {
			writeJSONError(w, http.StatusBadRequest, "missing ?"+param+"=NODE")
			return 0, false
		}
		id, ok := g.NodeByName(name)
		if !ok {
			writeJSONError(w, http.StatusNotFound, "unknown node "+name)
			return 0, false
		}
		return id, true
	}
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}

	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		u, ok := node(w, r, "u")
		if !ok {
			return
		}
		v, ok := node(w, r, "v")
		if !ok {
			return
		}
		score := idx.Query(u, v)
		writeJSON(w, map[string]any{
			"u":       g.NodeName(u),
			"v":       g.NodeName(v),
			"sem":     sem.Sim(u, v),
			"semsim":  score,
			"simrank": idx.SimRankQuery(u, v),
		})
		qlog.Log(quality.QueryEvent{
			Endpoint: "/query", U: g.NodeName(u), V: g.NodeName(v),
			Status: http.StatusOK, Score: score,
			LatencySeconds: time.Since(t0).Seconds(),
			Backend:        idx.Backend(),
			CacheHitRatio:  idx.CacheSummary().HitRatio,
		})
	})

	mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		u, ok := node(w, r, "u")
		if !ok {
			return
		}
		v, ok := node(w, r, "v")
		if !ok {
			return
		}
		ex, err := idx.ExplainQuery(u, v)
		if err != nil {
			writeJSONError(w, errorStatus(err), err.Error())
			return
		}
		ex.UName, ex.VName = g.NodeName(u), g.NodeName(v)
		writeJSON(w, ex)
		qlog.Log(quality.QueryEvent{
			Endpoint: "/explain", U: ex.UName, V: ex.VName,
			Status: http.StatusOK, Score: ex.Score,
			LatencySeconds: time.Since(t0).Seconds(),
			Backend:        ex.Backend,
			CIWidth:        ex.CIWidth(),
			CacheHitRatio:  idx.CacheSummary().HitRatio,
		})
	})

	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		u, ok := node(w, r, "u")
		if !ok {
			return
		}
		k := 10
		if s := r.URL.Query().Get("k"); s != "" {
			var err error
			if k, err = strconv.Atoi(s); err != nil || k < 1 {
				writeJSONError(w, http.StatusBadRequest, "bad ?k: want a positive integer")
				return
			}
		}
		type hit struct {
			Node  string  `json:"node"`
			Score float64 `json:"score"`
		}
		hits := []hit{}
		for _, s := range idx.TopK(u, k) {
			hits = append(hits, hit{g.NodeName(s.Node), s.Score})
		}
		writeJSON(w, map[string]any{"u": g.NodeName(u), "k": k, "results": hits})
		qlog.Log(quality.QueryEvent{
			Endpoint: "/topk", U: g.NodeName(u), K: k,
			Status: http.StatusOK, Results: len(hits),
			LatencySeconds: time.Since(t0).Seconds(),
			Backend:        idx.Backend(),
			Strategy:       idx.PlanStrategy(k),
			CacheHitRatio:  idx.CacheSummary().HitRatio,
		})
	})

	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, idx.Snapshot())
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})

	mux.Handle("/debug/vars", expvar.Handler())

	// net/http/pprof self-registers only on the default mux; mount its
	// handlers on ours explicitly. pprof.Index routes the named
	// profiles (heap, goroutine, block, mutex, ...) itself.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	return mux
}
