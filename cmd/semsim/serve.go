package main

// The serve subcommand keeps a built index resident and exposes it over
// HTTP together with the full observability surface:
//
//	semsim serve -graph g.hin -debug-addr :6060
//
//	/query?u=NAME&v=NAME   similarity of one pair (JSON)
//	/explain?u=NAME&v=NAME estimate-quality evidence: CI, variance, pruning (JSON)
//	/topk?u=NAME&k=10      top-k most similar nodes (JSON)
//	/mutate                POST a mutation batch (JSON ops), committed atomically
//	/snapshot              structured metrics snapshot (JSON)
//	/metrics               Prometheus text exposition
//	/debug/vars            expvar (the registry publishes under "semsim")
//	/debug/pprof/          net/http/pprof profiles
//	/debug/profiles        ring of anomaly-triggered CPU+heap captures
//	/debug/flight          flight recorder: recent requests+commits as NDJSON
//	/debug/heavy           most expensive source nodes by cumulative query cost
//	/debug/diag            one-shot diagnostics bundle (tar.gz of all of the above)
//	/healthz               readiness probe: 503 while building/warming, 200 after
//
// Errors are structured JSON ({"error": "..."}) with meaningful status
// codes: 400 for malformed parameters, 404 for unknown nodes (including
// engine bounds errors), 500 otherwise.
//
// POST /mutate accepts {"ops": [...]} where each op is one of
// {"op":"add_edge","from":N,"to":N,"label":L,"weight":W},
// {"op":"remove_edge","from":N,"to":N,"label":L},
// {"op":"add_node","name":N,"label":L} or
// {"op":"update_concept_freq","concept":N,"freq":F}. Node names resolve
// against the current epoch's graph, plus names minted by add_node ops
// earlier in the same batch. The batch commits atomically through the
// Mutator: concurrent queries keep answering from the previous epoch
// until the swap, then observe the new one — never a mix. Requests are
// serialized server-side; a commit that still loses the race answers
// 409 and can be retried verbatim. The response carries the new epoch
// and the repair stats (ops applied, walks resampled, nodes added).
//
// The listener binds before the index build starts, answering 503 on
// every route (including /healthz) until the index is built and the
// -warmup queries have run; orchestrators and cmd/loadgen gate on the
// /healthz flip. Every API request is assigned a request ID — taken
// from an X-Semsim-Request header when the caller sent a well-formed
// one, generated otherwise — echoed back in the same header and stamped
// into the wide-event query log and the sampled trace log, so one ID
// follows a request across process boundaries.
//
// The estimate-quality layer is on by default: the shadow verifier
// re-scores 1 in -shadow-rate queries on an exact reference backend
// (semsim_shadow_* series; 0 disables) and the runtime health collector
// polls memory/GC/goroutine gauges every -health-interval
// (semsim_runtime_* series). With -query-log PATH ("-" for stdout)
// every request emits one structured JSON wide event
// (-query-log-max-bytes adds size-based rotation, keeping
// -query-log-max-generations rotated files PATH.1..PATH.N). The
// serving-SLO layer is opt-in: -slo-latency sets the latency objective
// threshold and enables the multi-window burn-rate gauges
// (semsim_slo_*); -trace-log/-trace-sample write exported span traces
// as NDJSON for the sampled request subset; -profile-p99 arms the
// anomaly profiler, which captures a CPU+heap pprof pair into
// /debug/profiles when the inter-poll p99 crosses the threshold.
//
// Shutdown is graceful: SIGINT/SIGTERM stops the listener, in-flight
// requests get shutdownTimeout (default 5s) to drain via
// http.Server.Shutdown, the shadow verifier drains its queue, and a
// final metrics snapshot is logged before the process exits.

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"semsim"
	"semsim/internal/obs"
	"semsim/internal/obs/flight"
	"semsim/internal/obs/profwatch"
	"semsim/internal/obs/quality"
	"semsim/internal/obs/slo"
	"semsim/internal/walk"
)

// serveConfig carries everything the serve subcommand needs besides the
// already-loaded graph and measure.
type serveConfig struct {
	debugAddr string
	warmup    int
	opts      semsim.IndexOptions
	// walksPath, when non-empty, loads (or, with opts.LazyWalks,
	// demand-pages) the walk index from this file instead of sampling at
	// startup.
	walksPath string
	// queryLogPath, when non-empty, streams one JSON wide event per
	// request to this file ("-" = stdout). queryLogMaxBytes > 0 adds
	// size-based rotation keeping queryLogMaxGens rotated generations
	// (PATH.1 newest; 0 or 1 keeps the historical single .1).
	queryLogPath     string
	queryLogMaxBytes int64
	queryLogMaxGens  int
	// healthInterval is the runtime health poll cadence (0 = default).
	healthInterval time.Duration
	// sloLatency arms the serving SLO tracker: requests slower than
	// this burn the latency error budget (0 = SLO tracking off).
	// sloObjective is the required good-request fraction (default
	// 0.99); sloWindow the short burn-rate window (default 5m, the long
	// window is 12x).
	sloLatency   time.Duration
	sloObjective float64
	sloWindow    time.Duration
	// traceLogPath, when non-empty, writes exported span traces for a
	// sampled fraction of requests ("-" = stdout) at traceSample
	// (default 0.01).
	traceLogPath string
	traceSample  float64
	// profileP99 arms the anomaly profiler: when the inter-poll p99 of
	// semsim_query_seconds exceeds it, a CPU+heap profile pair is
	// captured (0 = off). Interval/cooldown/ring default to
	// 10s/5m/4 when zero.
	profileP99      time.Duration
	profileInterval time.Duration
	profileCooldown time.Duration
	profileRing     int
	// stop, when non-nil, replaces the SIGINT/SIGTERM trap — closing it
	// initiates the same graceful shutdown (used by tests).
	stop <-chan struct{}
	// shutdownTimeout bounds the in-flight request drain (default 5s).
	shutdownTimeout time.Duration
	// logw receives the startup trace and the final shutdown snapshot
	// (default os.Stderr).
	logw io.Writer
}

// runServe binds the listener (503 warming handler), builds the
// instrumented index, warms it, swaps in the real mux and serves until
// the listener fails or a shutdown signal arrives; on a signal it
// drains in-flight requests, logs a final metrics snapshot and returns
// nil. When ready is non-nil the bound address is sent on it once the
// server is warmed and answering (used by the CI smoke test to serve on
// 127.0.0.1:0).
func runServe(g *semsim.Graph, sem semsim.Measure, cfg serveConfig, ready chan<- string) error {
	logw := cfg.logw
	if logw == nil {
		logw = os.Stderr
	}
	reg := semsim.NewMetrics()
	tr := semsim.NewTrace("serve-startup")
	cfg.opts.Metrics = reg
	cfg.opts.Trace = tr
	cfg.opts.MeetIndex = true
	cfg.opts.AutoPlan = true

	// Bind before the potentially long index build: orchestrators can
	// probe /healthz immediately and get an honest 503 instead of a
	// connection refused they cannot distinguish from a dead process.
	l, err := net.Listen("tcp", cfg.debugAddr)
	if err != nil {
		return err
	}
	var handler atomic.Pointer[http.ServeMux]
	handler.Store(warmingMux())
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().ServeHTTP(w, r)
	})}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	fail := func(err error) error {
		srv.Close()
		return err
	}

	var idx *semsim.Index
	if cfg.walksPath != "" {
		idx, err = semsim.OpenIndexFile(cfg.walksPath, g, sem, cfg.opts)
	} else {
		idx, err = semsim.BuildIndex(g, sem, cfg.opts)
	}
	if err != nil {
		return fail(err)
	}
	defer idx.Close()

	var qlog *quality.QueryLog
	if cfg.queryLogPath != "" {
		w, closeLog, err := openLogSink(cfg.queryLogPath, cfg.queryLogMaxBytes, cfg.queryLogMaxGens)
		if err != nil {
			return fail(err)
		}
		defer closeLog()
		qlog = quality.NewQueryLog(w, reg)
	}
	health := quality.StartHealth(reg, cfg.healthInterval)
	defer health.Stop()

	var tracker *slo.Tracker
	if cfg.sloLatency > 0 {
		objective := cfg.sloObjective
		if objective <= 0 || objective >= 1 {
			objective = 0.99
		}
		window := cfg.sloWindow
		if window <= 0 {
			window = 5 * time.Minute
		}
		tracker = slo.New(slo.Config{
			Objective:        objective,
			LatencyThreshold: cfg.sloLatency,
			Windows:          []time.Duration{window, 12 * window},
		}, reg)
	}

	var tlog *obs.TraceLog
	var sampler *obs.Sampler
	if cfg.traceLogPath != "" {
		w, closeTrace, err := openLogSink(cfg.traceLogPath, 0, 0)
		if err != nil {
			return fail(err)
		}
		defer closeTrace()
		tlog = obs.NewTraceLog(w, reg)
		rate := cfg.traceSample
		if rate <= 0 {
			rate = 0.01
		}
		sampler = obs.NewSampler(rate, cfg.opts.Seed)
	}

	watcher := profwatch.Start(profwatch.Config{
		Hist:      reg.Histogram("semsim_query_seconds", "", nil),
		Threshold: cfg.profileP99,
		Interval:  cfg.profileInterval,
		Cooldown:  cfg.profileCooldown,
		RingSize:  cfg.profileRing,
	}, reg)
	defer watcher.Stop()

	registerBuildInfo(reg, idx)

	// Warm-up traffic: populates the query histogram, the pruning
	// counters and the SLING cache so the first scrape is non-empty.
	n := g.NumNodes()
	for i := 0; i < cfg.warmup && n > 1; i++ {
		u := semsim.NodeID(i % n)
		v := semsim.NodeID((i + 1) % n)
		idx.Query(u, v)
	}
	if n > 1 {
		idx.TopK(0, 5)
	}
	fmt.Fprint(logw, tr.String())

	reg.PublishExpvar("semsim")
	so := newServeObs(reg, qlog, tlog, sampler, tracker, watcher)
	handler.Store(newServeMux(idx, so))

	fmt.Fprintf(logw, "semsim: serving on http://%s (backend %s, metrics at /metrics, expvar at /debug/vars, pprof at /debug/pprof/)\n",
		l.Addr(), idx.Backend())
	if ready != nil {
		ready <- l.Addr().String()
	}

	// Graceful shutdown: a stop signal closes the listener, drains
	// in-flight requests for up to shutdownTimeout, then logs the final
	// metrics snapshot so the last scrape interval is never lost.
	stop := cfg.stop
	if stop == nil {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		stop = ctx.Done()
	}
	select {
	case err := <-errc:
		return err
	case <-stop:
	}
	timeout := cfg.shutdownTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	fmt.Fprintf(logw, "semsim: shutdown signal received, draining for up to %s\n", timeout)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	idx.Close() // drain pending shadow verifications before the final snapshot
	logFinalSnapshot(logw, idx)
	return shutdownErr
}

// warmingMux is the pre-readiness handler: every route answers 503 so
// probes, scrapes and eager clients all learn the same thing — the
// process is alive but the index is not ready to serve.
func warmingMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "warming"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSONError(w, http.StatusServiceUnavailable, "index building, not ready")
	})
	return mux
}

// openLogSink resolves an NDJSON log destination: "-" streams to
// stdout, anything else appends to the named file — through a
// size-rotating writer when maxBytes > 0, keeping maxGens rotated
// generations (values < 1 mean the historical single .1).
func openLogSink(path string, maxBytes int64, maxGens int) (io.Writer, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	if maxBytes > 0 {
		rf, err := quality.OpenRotatingFileGens(path, maxBytes, maxGens)
		if err != nil {
			return nil, nil, fmt.Errorf("semsim: open log sink: %w", err)
		}
		return rf, func() { rf.Close() }, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("semsim: open log sink: %w", err)
	}
	return f, func() { f.Close() }, nil
}

// registerBuildInfo exports the constant-1 semsim_build_info gauge whose
// labels identify this process's serving configuration, so scrape-side
// dashboards can correlate latency shifts with config changes.
func registerBuildInfo(reg *semsim.Metrics, idx *semsim.Index) {
	kernel := idx.KernelMode()
	if kernel == "" {
		kernel = "none"
	}
	residency := "resident"
	if idx.LazyWalks() {
		residency = "lazy"
	}
	reg.GaugeFunc(obs.SeriesName("semsim_build_info",
		"backend", idx.Backend(),
		"kernel", kernel,
		"walk_format", strconv.Itoa(walk.FormatVersion),
		"walk_residency", residency,
		"go", runtime.Version()),
		"Serving configuration identity (constant 1; the labels carry the information).",
		func() float64 { return 1 })
}

// writeDiagBundle streams the diagnostics tar.gz: one archive holding
// every observability surface a live incident review needs, captured at
// a single instant — the Prometheus exposition, expvar state, the
// flight-recorder dump, the retained trace records, the anomaly-profile
// ring index, SLO burn rates, heavy hitters and the serving identity.
// Entries are rendered to memory first (tar needs sizes up front); all
// of them are bounded rings or snapshots, so the bundle stays small.
func writeDiagBundle(w io.Writer, idx *semsim.Index, so *serveObs) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	now := time.Now()
	add := func(name string, data []byte) error {
		if err := tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(data)), ModTime: now,
		}); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	asJSON := func(v any) []byte {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			data, _ = json.Marshal(map[string]string{"error": err.Error()})
		}
		return append(data, '\n')
	}

	var prom bytes.Buffer
	so.reg.WriteText(&prom)

	var ev bytes.Buffer
	ev.WriteString("{")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			ev.WriteString(",")
		}
		first = false
		fmt.Fprintf(&ev, "%q:%s", kv.Key, kv.Value.String())
	})
	ev.WriteString("}\n")

	var fl bytes.Buffer
	so.flightRing.Dump(&fl)

	var traces bytes.Buffer
	for _, rec := range so.traceSnapshot() {
		if line, err := json.Marshal(rec); err == nil {
			traces.Write(line)
			traces.WriteByte('\n')
		}
	}

	kernel := idx.KernelMode()
	if kernel == "" {
		kernel = "none"
	}
	residency := "resident"
	if idx.LazyWalks() {
		residency = "lazy"
	}
	buildinfo := map[string]any{
		"time":           now,
		"backend":        idx.Backend(),
		"kernel":         kernel,
		"walk_format":    walk.FormatVersion,
		"walk_residency": residency,
		"epoch":          idx.Epoch(),
		"nodes":          idx.Graph().NumNodes(),
		"go":             runtime.Version(),
	}

	entries := []struct {
		name string
		data []byte
	}{
		{"metrics.prom", prom.Bytes()},
		{"expvar.json", ev.Bytes()},
		{"flight.ndjson", fl.Bytes()},
		{"traces.ndjson", traces.Bytes()},
		{"profiles.json", asJSON(map[string]any{"captures": so.watcher.Captures()})},
		{"slo.json", asJSON(so.slo.Snapshot())},
		{"heavy.json", asJSON(map[string]any{
			"capacity": heavyCapacity,
			"tracked":  so.heavy.Len(),
			"top":      so.heavy.Top(heavyCapacity),
		})},
		{"buildinfo.json", asJSON(buildinfo)},
	}
	for _, e := range entries {
		if err := add(e.name, e.data); err != nil {
			return err
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

// logFinalSnapshot writes a one-line summary plus the full structured
// metrics snapshot, so the traffic served since the last scrape is
// preserved in the process log.
func logFinalSnapshot(w io.Writer, idx *semsim.Index) {
	snap := idx.Snapshot()
	cache := idx.CacheSummary()
	fmt.Fprintf(w, "semsim: final snapshot: %d queries, %d top-k searches, cache %.0f%% hits (%d entries)\n",
		snap.Counters["semsim_queries_total"],
		snap.Counters["semsim_topk_total"],
		100*cache.HitRatio, cache.Entries)
	if data, err := json.Marshal(snap); err == nil {
		fmt.Fprintf(w, "semsim: final metrics snapshot: %s\n", data)
	}
}

// writeJSONError replies with the structured error shape every endpoint
// shares: {"error": "..."} under the given status code.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// errorStatus maps an index error to its HTTP status: engine bounds
// errors (unknown node) are the client's fault, everything else is
// ours.
func errorStatus(err error) int {
	if errors.Is(err, semsim.ErrNodeOutOfRange) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// mutateOp is the wire shape of one /mutate batch entry; Op selects
// which of the remaining fields apply.
type mutateOp struct {
	Op      string  `json:"op"`
	From    string  `json:"from,omitempty"`
	To      string  `json:"to,omitempty"`
	Label   string  `json:"label,omitempty"`
	Weight  float64 `json:"weight,omitempty"`
	Name    string  `json:"name,omitempty"`
	Concept string  `json:"concept,omitempty"`
	Freq    float64 `json:"freq,omitempty"`
}

// maxMutateBody bounds a /mutate request body; far above any sane
// batch, low enough that a runaway client cannot balloon the heap.
const maxMutateBody = 4 << 20

// requestIDHeader carries the request ID in both directions: a caller
// may supply one (gateway-assigned, or the parent's in a future sharded
// scatter-gather) and serve always echoes the effective ID back.
const requestIDHeader = "X-Semsim-Request"

// serveObs bundles the per-request observability sinks the API handlers
// share. Every field except reg may be nil (the corresponding feature
// is off); the wrap path is nil-safe throughout, per the obs
// convention.
type serveObs struct {
	reg      *semsim.Metrics
	qlog     *quality.QueryLog
	tracelog *obs.TraceLog
	sampler  *obs.Sampler
	slo      *slo.Tracker
	watcher  *profwatch.Watcher

	httpHist *obs.Histogram
	reqTotal map[string]*obs.Counter

	// costHists turns each request's Cost into the per-request
	// semsim_query_cost_* histograms; heavy tracks the most expensive
	// source nodes by cumulative Cost.Work (served at /debug/heavy);
	// flightRing is the always-on flight recorder (served at
	// /debug/flight and bundled by /debug/diag).
	costHists  *obs.CostHists
	heavy      *obs.HeavyHitters
	flightRing *flight.Ring

	// recentTraces is a small ring of the latest exported trace records
	// kept in memory for the diagnostics bundle, so traces are available
	// even when no -trace-log file is configured.
	traceMu      sync.Mutex
	recentTraces []obs.TraceRecord
	traceNext    int
	traceCount   int

	idBase string
	idSeq  atomic.Uint64
}

// flightRingSize is the flight recorder's capacity: at 1000 qps it holds
// the last ~4 seconds of traffic, at 10 qps the last ~7 minutes — enough
// to see what led up to an incident without unbounded memory.
const flightRingSize = 4096

// heavyCapacity bounds the heavy-hitters sketch (distinct tracked keys).
const heavyCapacity = 64

// recentTraceCap bounds the in-memory trace ring bundled by /debug/diag.
const recentTraceCap = 256

// newServeObs registers the HTTP-layer series and draws the random
// request-ID prefix that makes IDs from different processes distinct.
func newServeObs(reg *semsim.Metrics, qlog *quality.QueryLog, tlog *obs.TraceLog,
	sampler *obs.Sampler, tracker *slo.Tracker, watcher *profwatch.Watcher) *serveObs {
	so := &serveObs{
		reg: reg, qlog: qlog, tracelog: tlog, sampler: sampler,
		slo: tracker, watcher: watcher,
		httpHist: reg.Histogram("semsim_http_request_seconds",
			"End-to-end HTTP latency of the query API endpoints.", nil),
		reqTotal:   map[string]*obs.Counter{},
		costHists:  obs.NewCostHists(reg),
		heavy:      obs.NewHeavyHitters(heavyCapacity, reg),
		flightRing: flight.New(flightRingSize),
	}
	for _, ep := range []string{"/query", "/explain", "/topk", "/mutate"} {
		so.reqTotal[ep] = reg.Counter(
			obs.SeriesName("semsim_http_requests_total", "endpoint", ep),
			"HTTP requests served, by API endpoint.")
	}
	var b [4]byte
	if _, err := crand.Read(b[:]); err == nil {
		so.idBase = hex.EncodeToString(b[:])
	} else {
		so.idBase = "semsim"
	}
	return so
}

// reqInfo is the per-request context the wrap layer threads through a
// handler: the effective request ID, the sampled trace (nil when this
// request is not sampled) and the response status for SLO error
// classification.
type reqInfo struct {
	id     string
	trace  *semsim.Trace
	status int

	// cost is the request's cost accounting, filled by handlers that run
	// the query through a costed entry point; costed marks it live (so a
	// zero-cost request is still observed). costKey is the heavy-hitters
	// attribution key (the source node name); epoch and strategy annotate
	// the flight record.
	cost     semsim.Cost
	costed   bool
	costKey  string
	epoch    uint64
	strategy string
}

// fail records the status and writes the shared JSON error shape.
func (ri *reqInfo) fail(w http.ResponseWriter, status int, msg string) {
	ri.status = status
	writeJSONError(w, status, msg)
}

// requestID returns the caller-supplied ID when it is well-formed, or
// mints process-prefix-NNNNNN.
func (so *serveObs) requestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get(requestIDHeader)); id != "" {
		return id
	}
	return fmt.Sprintf("%s-%06d", so.idBase, so.idSeq.Add(1))
}

// sanitizeRequestID accepts IDs of 1..64 chars drawn from
// [A-Za-z0-9._-]; anything else returns "" (a fresh ID is minted).
// Restricting the alphabet keeps IDs safe to echo into headers, NDJSON
// logs and shell pipelines without escaping.
func sanitizeRequestID(s string) string {
	if s == "" || len(s) > 64 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return s
}

// wrap is the request-instrumentation middleware for the API endpoints:
// assigns and echoes the request ID, samples a trace, measures
// end-to-end latency into the HTTP histogram and the SLO tracker, and
// exports the sampled trace once the handler returns. The disabled
// state costs a few nil checks per request.
func (so *serveObs) wrap(endpoint string, h func(http.ResponseWriter, *http.Request, *reqInfo)) http.HandlerFunc {
	ctr := so.reqTotal[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		ri := &reqInfo{id: so.requestID(r), status: http.StatusOK}
		w.Header().Set(requestIDHeader, ri.id)
		if so.sampler.Sample() {
			ri.trace = semsim.NewTrace(endpoint)
		}
		h(w, r, ri)
		lat := time.Since(t0)
		ctr.Inc()
		so.httpHist.ObserveDuration(lat)
		so.slo.Observe(lat, ri.status >= 500)
		if ri.costed {
			so.costHists.Observe(&ri.cost)
			so.heavy.Observe(ri.costKey, ri.cost.Work())
		}
		so.flightRing.Record(flight.Record{
			TimeNS:    t0.UnixNano(),
			Endpoint:  endpoint,
			RequestID: ri.id,
			Epoch:     ri.epoch,
			Strategy:  ri.strategy,
			Status:    ri.status,
			ErrClass:  flight.ClassifyStatus(ri.status),
			LatencyNS: int64(lat),
			Cost:      ri.cost,
		})
		if ri.trace != nil {
			rec := ri.trace.Export()
			rec.Time = time.Now()
			rec.RequestID = ri.id
			so.tracelog.Log(rec)
			so.keepTrace(rec)
		}
	}
}

// keepTrace retains rec in the fixed-size in-memory ring the diag bundle
// reads, independent of whether a trace log file is configured.
func (so *serveObs) keepTrace(rec obs.TraceRecord) {
	so.traceMu.Lock()
	if so.recentTraces == nil {
		so.recentTraces = make([]obs.TraceRecord, recentTraceCap)
	}
	so.recentTraces[so.traceNext] = rec
	so.traceNext = (so.traceNext + 1) % recentTraceCap
	if so.traceCount < recentTraceCap {
		so.traceCount++
	}
	so.traceMu.Unlock()
}

// traceSnapshot copies the retained trace records oldest-first.
func (so *serveObs) traceSnapshot() []obs.TraceRecord {
	so.traceMu.Lock()
	defer so.traceMu.Unlock()
	out := make([]obs.TraceRecord, 0, so.traceCount)
	start := so.traceNext - so.traceCount
	for i := 0; i < so.traceCount; i++ {
		out = append(out, so.recentTraces[(start+i+recentTraceCap)%recentTraceCap])
	}
	return out
}

// newServeMux mounts the query API and the debug surfaces. Handlers
// resolve the graph and measure from the index per request rather than
// capturing the build-time objects: /mutate advances the epoch, and
// name resolution must see nodes added since startup.
func newServeMux(idx *semsim.Index, so *serveObs) *http.ServeMux {
	mux := http.NewServeMux()
	reg, qlog := so.reg, so.qlog

	node := func(w http.ResponseWriter, r *http.Request, g *semsim.Graph, param string, ri *reqInfo) (semsim.NodeID, bool) {
		name := r.URL.Query().Get(param)
		if name == "" {
			ri.fail(w, http.StatusBadRequest, "missing ?"+param+"=NODE")
			return 0, false
		}
		id, ok := g.NodeByName(name)
		if !ok {
			ri.fail(w, http.StatusNotFound, "unknown node "+name)
			return 0, false
		}
		return id, true
	}
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}

	mux.HandleFunc("/query", so.wrap("/query", func(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
		t0 := time.Now()
		g := idx.Graph()
		sp := ri.trace.Start("resolve")
		u, ok := node(w, r, g, "u", ri)
		if !ok {
			return
		}
		v, ok := node(w, r, g, "v", ri)
		sp.End()
		if !ok {
			return
		}
		sp = ri.trace.Start("score")
		score := idx.QueryCost(u, v, &ri.cost)
		semScore := idx.Sem().Sim(u, v)
		simrank := idx.SimRankQuery(u, v)
		sp.End()
		ri.costed, ri.costKey, ri.epoch = true, g.NodeName(u), idx.Epoch()
		sp = ri.trace.Start("encode")
		writeJSON(w, map[string]any{
			"u":       g.NodeName(u),
			"v":       g.NodeName(v),
			"sem":     semScore,
			"semsim":  score,
			"simrank": simrank,
			"cost":    &ri.cost,
		})
		sp.End()
		qlog.Log(quality.QueryEvent{
			RequestID: ri.id,
			Endpoint:  "/query", U: g.NodeName(u), V: g.NodeName(v),
			Status: http.StatusOK, Score: score,
			LatencySeconds: time.Since(t0).Seconds(),
			Backend:        idx.Backend(),
			CacheHitRatio:  idx.CacheSummary().HitRatio,
			Cost:           &ri.cost,
		})
	}))

	mux.HandleFunc("/explain", so.wrap("/explain", func(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
		t0 := time.Now()
		g := idx.Graph()
		sp := ri.trace.Start("resolve")
		u, ok := node(w, r, g, "u", ri)
		if !ok {
			return
		}
		v, ok := node(w, r, g, "v", ri)
		sp.End()
		if !ok {
			return
		}
		sp = ri.trace.Start("explain")
		ex, err := idx.ExplainQuery(u, v)
		sp.End()
		if err != nil {
			ri.fail(w, errorStatus(err), err.Error())
			return
		}
		ex.UName, ex.VName = g.NodeName(u), g.NodeName(v)
		ri.cost, ri.costed, ri.costKey, ri.epoch = ex.Cost, true, ex.UName, idx.Epoch()
		sp = ri.trace.Start("encode")
		writeJSON(w, ex)
		sp.End()
		qlog.Log(quality.QueryEvent{
			RequestID: ri.id,
			Endpoint:  "/explain", U: ex.UName, V: ex.VName,
			Status: http.StatusOK, Score: ex.Score,
			LatencySeconds: time.Since(t0).Seconds(),
			Backend:        ex.Backend,
			CIWidth:        ex.CIWidth(),
			CacheHitRatio:  idx.CacheSummary().HitRatio,
			Cost:           &ri.cost,
		})
	}))

	mux.HandleFunc("/topk", so.wrap("/topk", func(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
		t0 := time.Now()
		g := idx.Graph()
		sp := ri.trace.Start("resolve")
		u, ok := node(w, r, g, "u", ri)
		sp.End()
		if !ok {
			return
		}
		k := 10
		if s := r.URL.Query().Get("k"); s != "" {
			var err error
			if k, err = strconv.Atoi(s); err != nil || k < 1 {
				ri.fail(w, http.StatusBadRequest, "bad ?k: want a positive integer")
				return
			}
		}
		type hit struct {
			Node  string  `json:"node"`
			Score float64 `json:"score"`
		}
		sp = ri.trace.Start("topk")
		results := idx.TopKCost(u, k, &ri.cost)
		sp.End()
		ri.costed, ri.costKey = true, g.NodeName(u)
		ri.epoch, ri.strategy = idx.Epoch(), idx.PlanStrategy(k)
		hits := []hit{}
		for _, s := range results {
			hits = append(hits, hit{g.NodeName(s.Node), s.Score})
		}
		sp = ri.trace.Start("encode")
		writeJSON(w, map[string]any{"u": g.NodeName(u), "k": k, "results": hits, "cost": &ri.cost})
		sp.End()
		qlog.Log(quality.QueryEvent{
			RequestID: ri.id,
			Endpoint:  "/topk", U: g.NodeName(u), K: k,
			Status: http.StatusOK, Results: len(hits),
			LatencySeconds: time.Since(t0).Seconds(),
			Backend:        idx.Backend(),
			Strategy:       ri.strategy,
			CacheHitRatio:  idx.CacheSummary().HitRatio,
			Cost:           &ri.cost,
		})
	}))

	// Mutation batches serialize on mutateMu: every request then commits
	// against the epoch it resolved names on, so the 409 path below is a
	// belt-and-suspenders guard, not a steady-state outcome.
	var mutateMu sync.Mutex
	mux.HandleFunc("/mutate", so.wrap("/mutate", func(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
		if r.Method != http.MethodPost {
			ri.fail(w, http.StatusMethodNotAllowed, "POST a JSON mutation batch")
			return
		}
		var req struct {
			Ops []mutateOp `json:"ops"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, maxMutateBody)).Decode(&req); err != nil {
			ri.fail(w, http.StatusBadRequest, "bad mutation batch: "+err.Error())
			return
		}
		if len(req.Ops) == 0 {
			ri.fail(w, http.StatusBadRequest, "empty mutation batch")
			return
		}
		mutateMu.Lock()
		defer mutateMu.Unlock()
		sp := ri.trace.Start("stage")
		g := idx.Graph()
		m := idx.NewMutator()
		// Names minted by add_node ops resolve for later ops of the same
		// batch, so a node and its wiring commit together.
		minted := map[string]semsim.NodeID{}
		resolve := func(name string) (semsim.NodeID, bool) {
			if id, ok := minted[name]; ok {
				return id, true
			}
			return g.NodeByName(name)
		}
		for i, op := range req.Ops {
			switch op.Op {
			case "add_edge", "remove_edge":
				u, ok := resolve(op.From)
				if !ok {
					ri.fail(w, http.StatusNotFound, fmt.Sprintf("op %d: unknown node %q", i, op.From))
					return
				}
				v, ok := resolve(op.To)
				if !ok {
					ri.fail(w, http.StatusNotFound, fmt.Sprintf("op %d: unknown node %q", i, op.To))
					return
				}
				if op.Op == "add_edge" {
					weight := op.Weight
					if weight == 0 {
						weight = 1
					}
					m.AddEdge(u, v, op.Label, weight)
				} else {
					m.RemoveEdge(u, v, op.Label)
				}
			case "add_node":
				if op.Name == "" {
					ri.fail(w, http.StatusBadRequest, fmt.Sprintf("op %d: add_node needs a name", i))
					return
				}
				if id := m.AddNode(op.Name, op.Label); id >= 0 {
					minted[op.Name] = id
				}
			case "update_concept_freq":
				c, ok := resolve(op.Concept)
				if !ok {
					ri.fail(w, http.StatusNotFound, fmt.Sprintf("op %d: unknown concept %q", i, op.Concept))
					return
				}
				m.UpdateConceptFreq(c, op.Freq)
			default:
				ri.fail(w, http.StatusBadRequest, fmt.Sprintf("op %d: unknown op %q", i, op.Op))
				return
			}
		}
		sp.End()
		sp = ri.trace.Start("commit")
		st, err := m.Commit()
		sp.End()
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, semsim.ErrStaleMutator) {
				status = http.StatusConflict
			}
			ri.fail(w, status, err.Error())
			return
		}
		ri.epoch = st.Epoch
		writeJSON(w, map[string]any{
			"epoch":           st.Epoch,
			"ops":             st.Ops,
			"resampled_walks": st.ResampledWalks,
			"new_nodes":       st.NewNodes,
		})
	}))

	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, idx.Snapshot())
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})

	mux.Handle("/debug/vars", expvar.Handler())

	// net/http/pprof self-registers only on the default mux; mount its
	// handlers on ours explicitly. pprof.Index routes the named
	// profiles (heap, goroutine, block, mutex, ...) itself.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	// The anomaly-capture ring; a nil watcher serves an empty index.
	profiles := so.watcher.Handler("/debug/profiles")
	mux.Handle("/debug/profiles", profiles)
	mux.Handle("/debug/profiles/", profiles)

	// The flight recorder: the last flightRingSize wide events (queries
	// and mutation commits) as NDJSON, oldest first.
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		so.flightRing.Dump(w)
	})

	// The heavy-hitters sketch: the most expensive source nodes by
	// cumulative cost (?n= bounds the list, default 20).
	mux.HandleFunc("/debug/heavy", func(w http.ResponseWriter, r *http.Request) {
		n := 20
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		writeJSON(w, map[string]any{
			"capacity": heavyCapacity,
			"tracked":  so.heavy.Len(),
			"top":      so.heavy.Top(n),
		})
	})

	// The one-shot diagnostics bundle: everything an incident review
	// needs in a single tar.gz download.
	mux.HandleFunc("/debug/diag", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/gzip")
		w.Header().Set("Content-Disposition", `attachment; filename="semsim-diag.tar.gz"`)
		if err := writeDiagBundle(w, idx, so); err != nil {
			// Headers are gone; all we can do is drop the connection
			// so the client sees a truncated archive, not a clean EOF.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
			}
		}
	})

	// Readiness: this mux only ever serves after build+warmup, so a 200
	// here means the index answers queries.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	return mux
}
