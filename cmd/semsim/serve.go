package main

// The serve subcommand keeps a built index resident and exposes it over
// HTTP together with the full observability surface:
//
//	semsim serve -graph g.hin -debug-addr :6060 [index flags]
//
//	/query?u=NAME&v=NAME   similarity of one pair (JSON)
//	/topk?u=NAME&k=10      top-k most similar nodes (JSON)
//	/snapshot              structured metrics snapshot (JSON)
//	/metrics               Prometheus text exposition
//	/debug/vars            expvar (the registry publishes under "semsim")
//	/debug/pprof/          net/http/pprof profiles
//	/healthz               liveness probe
//
// Startup runs -warmup queries (default 4) so the latency histograms
// and cache statistics are populated before the first scrape.

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"

	"semsim"
)

// serveConfig carries everything the serve subcommand needs besides the
// already-loaded graph and measure.
type serveConfig struct {
	debugAddr string
	warmup    int
	opts      semsim.IndexOptions
}

// runServe builds the instrumented index, warms it, and serves until
// the listener fails. When ready is non-nil the bound address is sent
// on it once the listener is up (used by the CI smoke test to serve on
// 127.0.0.1:0).
func runServe(g *semsim.Graph, sem semsim.Measure, cfg serveConfig, ready chan<- string) error {
	reg := semsim.NewMetrics()
	tr := semsim.NewTrace("serve-startup")
	cfg.opts.Metrics = reg
	cfg.opts.Trace = tr
	cfg.opts.MeetIndex = true

	idx, err := semsim.BuildIndex(g, sem, cfg.opts)
	if err != nil {
		return err
	}

	// Warm-up traffic: populates the query histogram, the pruning
	// counters and the SLING cache so the first scrape is non-empty.
	n := g.NumNodes()
	for i := 0; i < cfg.warmup && n > 1; i++ {
		u := semsim.NodeID(i % n)
		v := semsim.NodeID((i + 1) % n)
		idx.Query(u, v)
	}
	if n > 1 {
		idx.TopK(0, 5)
	}
	fmt.Fprint(os.Stderr, tr.String())

	reg.PublishExpvar("semsim")
	mux := newServeMux(g, sem, idx, reg)

	l, err := net.Listen("tcp", cfg.debugAddr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "semsim: serving on http://%s (metrics at /metrics, expvar at /debug/vars, pprof at /debug/pprof/)\n",
		l.Addr())
	if ready != nil {
		ready <- l.Addr().String()
	}
	return http.Serve(l, mux)
}

// newServeMux mounts the query API and the three debug surfaces.
func newServeMux(g *semsim.Graph, sem semsim.Measure, idx *semsim.Index, reg *semsim.Metrics) *http.ServeMux {
	mux := http.NewServeMux()

	node := func(w http.ResponseWriter, r *http.Request, param string) (semsim.NodeID, bool) {
		name := r.URL.Query().Get(param)
		if name == "" {
			http.Error(w, "missing ?"+param+"=NODE", http.StatusBadRequest)
			return 0, false
		}
		id, ok := g.NodeByName(name)
		if !ok {
			http.Error(w, "unknown node "+name, http.StatusNotFound)
			return 0, false
		}
		return id, true
	}
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}

	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		u, ok := node(w, r, "u")
		if !ok {
			return
		}
		v, ok := node(w, r, "v")
		if !ok {
			return
		}
		writeJSON(w, map[string]any{
			"u":       g.NodeName(u),
			"v":       g.NodeName(v),
			"sem":     sem.Sim(u, v),
			"semsim":  idx.Query(u, v),
			"simrank": idx.SimRankQuery(u, v),
		})
	})

	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		u, ok := node(w, r, "u")
		if !ok {
			return
		}
		k := 10
		if s := r.URL.Query().Get("k"); s != "" {
			var err error
			if k, err = strconv.Atoi(s); err != nil || k < 1 {
				http.Error(w, "bad ?k", http.StatusBadRequest)
				return
			}
		}
		type hit struct {
			Node  string  `json:"node"`
			Score float64 `json:"score"`
		}
		hits := []hit{}
		for _, s := range idx.TopK(u, k) {
			hits = append(hits, hit{g.NodeName(s.Node), s.Score})
		}
		writeJSON(w, map[string]any{"u": g.NodeName(u), "k": k, "results": hits})
	})

	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, idx.Snapshot())
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})

	mux.Handle("/debug/vars", expvar.Handler())

	// net/http/pprof self-registers only on the default mux; mount its
	// handlers on ours explicitly. pprof.Index routes the named
	// profiles (heap, goroutine, block, mutex, ...) itself.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	return mux
}
