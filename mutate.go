package semsim

import (
	"errors"
	"fmt"

	"semsim/internal/hin"
	"semsim/internal/mc"
	"semsim/internal/semantic"
	"semsim/internal/simrank"
)

// ErrStaleMutator is returned by Commit when another batch committed
// after this Mutator was created: its prospective node ids and edge ops
// were built against a snapshot that is no longer current. Create a
// fresh Mutator from the new epoch and replay the ops.
var ErrStaleMutator = errors.New("semsim: mutator is stale: another batch committed since NewMutator")

// seedStride separates the walk-resampling seed streams of successive
// epochs (the 64-bit golden ratio, the usual stream splitter).
const seedStride = int64(-0x61C8864680B583EB) // 0x9E3779B97F4A7C15 as int64

// Mutator batches graph and semantic mutations against one index epoch
// and applies them atomically with Commit. Ops accumulate locally —
// nothing is visible to queries until Commit swaps in the successor
// snapshot. A Mutator is not safe for concurrent use; concurrent
// writers each take their own Mutator and serialize on Commit (the
// loser of a race gets ErrStaleMutator and replays).
type Mutator struct {
	ix   *Index
	base *snapshot

	addEdges  []Edge
	dropEdges []hin.EdgeKey
	newNodes  []newNode
	newNames  map[string]NodeID
	icUpdates map[int32]float64
	err       error
}

type newNode struct {
	name, label string
}

// CommitStats reports what one committed batch did.
type CommitStats struct {
	// Epoch is the epoch the commit published (0 is the build epoch, so
	// the first commit publishes 1).
	Epoch uint64
	// Ops counts the batched mutations applied.
	Ops int
	// ResampledWalks is how many of the walk index's n*n_w walks the
	// incremental repair had to resample (walks through changed
	// in-neighborhoods); the rest carried over untouched.
	ResampledWalks int
	// NewNodes is how many nodes the batch added.
	NewNodes int
}

// NewMutator starts a mutation batch against the current epoch. The
// returned Mutator sees a frozen view: node ids it hands out and edge
// ops it records resolve against the snapshot current at this call.
func (ix *Index) NewMutator() *Mutator {
	return &Mutator{ix: ix, base: ix.snap.Load()}
}

// AddNode schedules a node with a unique external name and vertex
// label, returning its prospective id — valid for AddEdge calls in the
// same batch and final once Commit succeeds (builder ids are assigned
// in insertion order, so the prospective id is exact, not a guess). A
// name that already exists in the graph or in this batch records an
// error that Commit reports.
func (m *Mutator) AddNode(name, label string) NodeID {
	if _, exists := m.base.g.NodeByName(name); exists {
		m.fail(fmt.Errorf("semsim: AddNode %q: name already in graph", name))
		return -1
	}
	if _, dup := m.newNames[name]; dup {
		m.fail(fmt.Errorf("semsim: AddNode %q: name already added in this batch", name))
		return -1
	}
	id := NodeID(m.base.g.NumNodes() + len(m.newNodes))
	m.newNodes = append(m.newNodes, newNode{name: name, label: label})
	if m.newNames == nil {
		m.newNames = make(map[string]NodeID)
	}
	m.newNames[name] = id
	return id
}

// AddEdge schedules a directed edge. Endpoints may be existing nodes or
// prospective ids from AddNode in the same batch; weights must be
// finite and > 0 (validated at Commit by the graph builder).
func (m *Mutator) AddEdge(from, to NodeID, label string, weight float64) {
	m.addEdges = append(m.addEdges, Edge{From: from, To: to, Label: label, Weight: weight})
}

// RemoveEdge schedules removal of every parallel copy of the
// (from, to, label) edge. Removing an edge that does not exist is a
// no-op, matching WithoutEdges.
func (m *Mutator) RemoveEdge(from, to NodeID, label string) {
	m.dropEdges = append(m.dropEdges, hin.EdgeKey{From: from, To: to, Label: label})
}

// UpdateConceptFreq schedules an information-content update for one
// concept (graph node) — the dynamic-semantics hook of Section 2.2: ic
// is the new IC value in (0,1], clamped like Taxonomy.SetIC. Requires
// the index's measure to be taxonomy-backed (Lin, Resnik, Wu–Palmer,
// Jiang–Conrath, Path); Commit fails otherwise.
func (m *Mutator) UpdateConceptFreq(concept NodeID, ic float64) {
	if m.icUpdates == nil {
		m.icUpdates = make(map[int32]float64)
	}
	m.icUpdates[int32(concept)] = ic
}

// Ops reports how many mutations the batch holds.
func (m *Mutator) Ops() int {
	return len(m.addEdges) + len(m.dropEdges) + len(m.newNodes) + len(m.icUpdates)
}

func (m *Mutator) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

// Commit applies the batch and publishes the successor epoch. The
// repair is incremental — only walks through changed in-neighborhoods
// are resampled, only affected SLING-cache rows and kernel concept
// pairs are recomputed, the meet index is patched cell-wise — and the
// result is equivalent to rebuilding the index from scratch on the
// mutated graph (identical up to Monte-Carlo resampling noise on the
// repaired walks). Queries racing with Commit never block and never
// see a torn state: they run to completion on whichever epoch they
// loaded first.
//
// Commits serialize on the index; a Mutator created before another
// batch committed fails with ErrStaleMutator. An empty batch is a
// no-op reporting the current epoch.
func (m *Mutator) Commit() (CommitStats, error) {
	if m.err != nil {
		return CommitStats{}, m.err
	}
	ix := m.ix
	if m.Ops() == 0 {
		return CommitStats{Epoch: ix.snap.Load().epoch}, nil
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	cur := ix.snap.Load()
	if cur != m.base {
		return CommitStats{}, ErrStaleMutator
	}
	opts := ix.opts
	commitLat := ix.metrics.Histogram("semsim_commit_seconds",
		"wall time of one Mutator.Commit: incremental walk/cache/kernel repair plus snapshot assembly", nil)
	t0 := commitLat.Start()

	newG, err := m.buildGraph(cur.g)
	if err != nil {
		return CommitStats{}, err
	}
	n2 := newG.NumNodes()
	changed, err := hin.ChangedInNeighborhoodsGrown(cur.g, newG)
	if err != nil {
		return CommitStats{}, err
	}

	epoch := cur.epoch + 1
	newWalks, rst, err := cur.walks.Refresh(newG, changed, opts.Seed+int64(epoch)*seedStride)
	if err != nil {
		return CommitStats{}, err
	}

	// Semantic side: grow the taxonomy under the measure for new nodes,
	// apply IC updates copy-on-write, and rebind the measure — the old
	// epoch keeps scoring against its own taxonomy.
	newBase := ix.baseSem
	semChanged := len(m.icUpdates) > 0
	if k := len(m.newNodes); k > 0 || semChanged {
		tax, ok := semantic.TaxonomyOf(newBase)
		if !ok && semChanged {
			return CommitStats{}, fmt.Errorf("semsim: UpdateConceptFreq requires a taxonomy-backed measure, have %s", newBase.Name())
		}
		if ok {
			if k > 0 {
				tax = tax.Grow(k)
			}
			if semChanged {
				tax = tax.WithIC(m.icUpdates)
			}
			newBase, _ = semantic.RebindTaxonomy(newBase, tax)
		}
	}

	// Kernel repair: cells whose concept classes the IC updates cannot
	// have reached carry over bit-identically; new nodes' classes are
	// affected by construction.
	sem := newBase
	kern := cur.kernel
	if cur.kernel != nil {
		if semChanged || n2 > cur.g.NumNodes() {
			affected := make([]bool, n2)
			if semChanged {
				tax, _ := semantic.TaxonomyOf(newBase)
				for x := range m.icUpdates {
					for v := 0; v < n2; v++ {
						if tax.IsAncestor(x, int32(v)) {
							affected[v] = true
						}
					}
				}
			}
			kern, err = cur.kernel.Refresh(newBase, n2, affected, semantic.KernelOptions{
				MemoryBudget: opts.KernelMemoryBudget,
				Workers:      opts.Workers,
				Metrics:      opts.Metrics,
			})
			if err != nil {
				return CommitStats{}, err
			}
		}
		sem = kern
	}

	// SLING cache: an IC update leaks the measure into every stored
	// normalization, so it forces a fresh cache (re-warmed per the
	// build options); pure edge/node edits migrate, carrying every
	// pair with both endpoints' in-neighborhoods unchanged.
	var cache *mc.SOCache
	if cur.cache != nil {
		if semChanged {
			cache = mc.NewSOCache(newG, sem, opts.SLINGCutoff)
			if opts.WarmCache {
				if !cache.EnableDense(0, opts.Workers) {
					cache.PrecomputeParallel(opts.Workers)
				}
			}
		} else {
			changedBool := make([]bool, n2)
			for _, v := range changed {
				changedBool[v] = true
			}
			cache = cur.cache.Migrate(newG, sem, changedBool, opts.Workers)
		}
	}

	est, err := mc.New(newWalks, sem, mc.Options{
		C: opts.C, Theta: opts.Theta, Cache: cache,
		Workers: opts.Workers, Metrics: opts.Metrics,
	})
	if err != nil {
		return CommitStats{}, err
	}
	srmc, err := simrank.NewMC(newWalks, opts.C)
	if err != nil {
		return CommitStats{}, err
	}

	snap := &snapshot{epoch: epoch, g: newG, sem: sem, walks: newWalks,
		est: est, srmc: srmc, cache: cache, kernel: kern}
	if cur.meet != nil {
		repairLat := ix.metrics.Histogram("semsim_commit_meet_repair_seconds",
			"wall time of the cell-wise meet-index patch inside Commit", nil)
		tr := repairLat.Start()
		snap.meet, err = cur.meet.Repair(newWalks, rst.Touched)
		repairLat.ObserveSince(tr)
		if err != nil {
			return CommitStats{}, err
		}
	}
	if err := snap.finish(opts); err != nil {
		return CommitStats{}, err
	}

	ix.baseSem = newBase
	ix.snap.Store(snap)
	if cur.walks.Lazy() {
		// The superseded epoch's walk index holds a reference on the
		// shared walk file; park it so Index.Close can release the chain.
		// (Resident epochs hold nothing that needs explicit release.)
		ix.retired = append(ix.retired, cur.walks)
	}
	commitLat.ObserveSince(t0)
	ix.metrics.Counter("semsim_commit_total",
		"Mutation batches committed.").Inc()
	ix.metrics.Counter("semsim_commit_ops_total",
		"Individual mutations (edge/node/concept ops) applied by commits.").Add(int64(m.Ops()))
	ix.metrics.Counter("semsim_commit_walks_resampled_total",
		"Walks resampled by incremental repair across all commits.").Add(int64(rst.Resampled))
	ix.metrics.Gauge("semsim_mutator_epoch",
		"current index epoch: 0 at build, +1 per committed mutation batch").Set(int64(epoch))
	ix.metrics.Gauge("semsim_walk_index_bytes",
		"storage of the flat walk arrays plus the per-walk length table").Set(newWalks.MemoryBytes())
	return CommitStats{
		Epoch:          epoch,
		Ops:            m.Ops(),
		ResampledWalks: rst.Resampled,
		NewNodes:       rst.NewNodes,
	}, nil
}

// buildGraph materializes the batch's successor graph: old nodes in id
// order, batch nodes appended (so prospective ids are exact), old edges
// minus the drop set, batch edges appended.
func (m *Mutator) buildGraph(g *Graph) (*Graph, error) {
	b := hin.NewBuilder()
	for v := 0; v < g.NumNodes(); v++ {
		b.AddNode(g.NodeName(NodeID(v)), g.NodeLabel(NodeID(v)))
	}
	for _, nn := range m.newNodes {
		b.AddNode(nn.name, nn.label)
	}
	if len(m.dropEdges) == 0 {
		g.Edges(func(e Edge) bool {
			b.AddEdge(e.From, e.To, e.Label, e.Weight)
			return true
		})
	} else {
		drop := make(map[hin.EdgeKey]bool, len(m.dropEdges))
		for _, d := range m.dropEdges {
			drop[d] = true
		}
		g.Edges(func(e Edge) bool {
			if !drop[hin.EdgeKey{From: e.From, To: e.To, Label: e.Label}] {
				b.AddEdge(e.From, e.To, e.Label, e.Weight)
			}
			return true
		})
	}
	for _, e := range m.addEdges {
		b.AddEdge(e.From, e.To, e.Label, e.Weight)
	}
	return b.Build()
}
