package semsim_test

// Capacity acceptance tests for the v3 walk format and the lazy
// residency mode, at the public-facade level: the compression ratio the
// block format exists for, convert round-trips, and lazy serving under
// a cache budget far below the decoded index size.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"semsim"
	"semsim/internal/datagen"
)

// capacityIndex builds the Amazon-style benchmark graph and its index
// (the same shape the BENCH_query.json benchmarks run on).
func capacityIndex(t *testing.T, opts semsim.IndexOptions) (*datagen.Dataset, *semsim.Index) {
	t.Helper()
	d, err := datagen.Amazon(datagen.AmazonConfig{Items: 600, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if opts.NumWalks == 0 {
		opts = semsim.IndexOptions{NumWalks: 150, WalkLength: 15, Seed: 1, Parallel: true}
	}
	idx, err := semsim.BuildIndex(d.Graph, d.Lin, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, idx
}

// TestWalkFormatCompression is the headline capacity claim: on the
// Amazon-style benchmark graph the v3 block format is at least 2.5x
// smaller on disk than the flat v2 layout (in-slot step coding spends
// ~1 byte per step against v2's fixed 4).
func TestWalkFormatCompression(t *testing.T) {
	_, idx := capacityIndex(t, semsim.IndexOptions{})
	defer idx.Close()
	var v2, v3 bytes.Buffer
	if err := idx.SaveWalksFormat(&v2, "v2"); err != nil {
		t.Fatal(err)
	}
	if err := idx.SaveWalksFormat(&v3, "v3"); err != nil {
		t.Fatal(err)
	}
	ratio := float64(v2.Len()) / float64(v3.Len())
	t.Logf("v2 = %d bytes, v3 = %d bytes, ratio = %.2fx", v2.Len(), v3.Len(), ratio)
	if ratio < 2.5 {
		t.Fatalf("v3 is only %.2fx smaller than v2, want >= 2.5x", ratio)
	}
}

// TestConvertWalksRoundTrip drives the `semsim convert` path both ways
// through the facade: v3 -> v2 -> v3 must reproduce the original bytes,
// and an index loaded from the converted file must answer identically.
func TestConvertWalksRoundTrip(t *testing.T) {
	d, idx := capacityIndex(t, semsim.IndexOptions{})
	defer idx.Close()
	var v3 bytes.Buffer
	if err := idx.SaveWalks(&v3); err != nil { // default format is v3
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if _, err := semsim.ConvertWalks(bytes.NewReader(v3.Bytes()), d.Graph, &v2, "v2"); err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if _, err := semsim.ConvertWalks(bytes.NewReader(v2.Bytes()), d.Graph, &back, "v3"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v3.Bytes(), back.Bytes()) {
		t.Fatal("v3 -> v2 -> v3 did not reproduce the original bytes")
	}
	if _, err := semsim.ConvertWalks(bytes.NewReader(v3.Bytes()), d.Graph, &bytes.Buffer{}, "v9"); err == nil {
		t.Fatal("unknown format accepted")
	}

	fromV2, err := semsim.LoadIndex(bytes.NewReader(v2.Bytes()), d.Graph, d.Lin, semsim.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fromV2.Close()
	for i := 0; i < 64; i++ {
		u, v := semsim.NodeID(i*7%600), semsim.NodeID((i*13+1)%600)
		if got, want := fromV2.Query(u, v), idx.Query(u, v); got != want {
			t.Fatalf("converted index diverged at (%d,%d): %v != %v", u, v, got, want)
		}
	}
}

// TestLazyIndexServesUnderBudget is the lazy-residency acceptance test:
// an index opened with LazyWalks and a cache budget far below the
// decoded walk size answers Query and TopK bit-identically to the fully
// resident load of the same file, while the decoded-block residency
// stays capped at the budget throughout.
func TestLazyIndexServesUnderBudget(t *testing.T) {
	d, built := capacityIndex(t, semsim.IndexOptions{})
	defer built.Close()
	path := filepath.Join(t.TempDir(), "walks.v3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := built.SaveWalks(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	opts := semsim.IndexOptions{NumWalks: 150, WalkLength: 15, Seed: 1}
	resident, err := semsim.OpenIndexFile(path, d.Graph, d.Lin, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer resident.Close()

	// The decoded index is n*nw*(t+1+1) int32s (~5.8 MB here); a 256 KiB
	// budget forces continuous eviction, so correctness below is served
	// through the cold path, not a warm cache.
	const budget = 256 << 10
	if decoded := resident.MemoryBytes(); decoded < 8*budget {
		t.Fatalf("budget %d is not far below the resident index (%d bytes); test proves nothing", budget, decoded)
	}
	opts.LazyWalks, opts.WalkCacheBytes = true, budget
	lazy, err := semsim.OpenIndexFile(path, d.Graph, d.Lin, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()
	if !lazy.LazyWalks() || resident.LazyWalks() {
		t.Fatal("residency mode flags wrong")
	}

	for i := 0; i < 256; i++ {
		u, v := semsim.NodeID(i*7%600), semsim.NodeID((i*13+1)%600)
		if got, want := lazy.Query(u, v), resident.Query(u, v); got != want {
			t.Fatalf("lazy diverged at (%d,%d): %v != %v", u, v, got, want)
		}
		if r := lazy.WalkCacheResidentBytes(); r > budget {
			t.Fatalf("cache residency %d exceeds budget %d", r, budget)
		}
	}
	if lazy.WalkCacheResidentBytes() == 0 {
		t.Fatal("cache never populated")
	}
	if got, want := lazy.TopK(3, 10), resident.TopK(3, 10); len(got) != len(want) {
		t.Fatalf("TopK diverged: %d vs %d results", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("TopK[%d] diverged: %+v != %+v", i, got[i], want[i])
			}
		}
	}
	if lazy.MemoryBytes() >= resident.MemoryBytes() {
		t.Fatalf("lazy MemoryBytes %d not below resident %d", lazy.MemoryBytes(), resident.MemoryBytes())
	}
}

// TestLazyIndexMutation commits an edge edit against a lazily opened
// index: the refresh must rewrite only touched blocks (PR 8's mutation
// path in lazy mode) and queries on the new epoch must keep matching a
// resident index taken through the identical commit.
func TestLazyIndexMutation(t *testing.T) {
	d, err := datagen.Amazon(datagen.AmazonConfig{Items: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opts := semsim.IndexOptions{NumWalks: 40, WalkLength: 8, Seed: 3, Parallel: true}
	built, err := semsim.BuildIndex(d.Graph, d.Lin, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "walks.v3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := built.SaveWalks(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	built.Close()

	resident, err := semsim.OpenIndexFile(path, d.Graph, d.Lin, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer resident.Close()
	lazyOpts := opts
	lazyOpts.LazyWalks, lazyOpts.WalkCacheBytes = true, 64<<10
	lazy, err := semsim.OpenIndexFile(path, d.Graph, d.Lin, lazyOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()

	commit := func(idx *semsim.Index) {
		t.Helper()
		m := idx.NewMutator()
		m.AddEdge(1, 2, "cap-test", 1)
		if _, err := m.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commit(resident)
	commit(lazy)
	if lazy.Epoch() != 1 || !lazy.LazyWalks() {
		t.Fatalf("lazy epoch %d lazy=%v after commit", lazy.Epoch(), lazy.LazyWalks())
	}
	n := d.Graph.NumNodes()
	for i := 0; i < 128; i++ {
		u, v := semsim.NodeID(i*7%n), semsim.NodeID((i*13+1)%n)
		if got, want := lazy.Query(u, v), resident.Query(u, v); got != want {
			t.Fatalf("post-commit lazy diverged at (%d,%d): %v != %v", u, v, got, want)
		}
	}
}
