package semsim_test

import (
	"fmt"

	"semsim"
)

// exampleGraph builds the small network used by the documentation
// examples: two authors sharing a field, one outsider.
func exampleGraph() (*semsim.Graph, *semsim.Taxonomy) {
	b := semsim.NewGraphBuilder()
	field := b.AddNode("Field", "category")
	db := b.AddNode("Databases", "field")
	ml := b.AddNode("ML", "field")
	for _, f := range []semsim.NodeID{db, ml} {
		b.AddEdge(f, field, "is-a", 1)
		b.AddEdge(field, f, "has-instance", 1)
	}
	ada := b.AddNode("ada", "author")
	ben := b.AddNode("ben", "author")
	eve := b.AddNode("eve", "author")
	b.AddUndirected(ada, db, "interest", 2)
	b.AddUndirected(ben, db, "interest", 2)
	b.AddUndirected(eve, ml, "interest", 2)
	b.AddUndirected(ada, ben, "co-author", 3)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	tax, err := semsim.BuildTaxonomy(g, semsim.TaxonomyOptions{})
	if err != nil {
		panic(err)
	}
	return g, tax
}

// The exact fixpoint ranks the co-authors sharing a field above the
// cross-field pair.
func ExampleExact() {
	g, tax := exampleGraph()
	res, err := semsim.Exact(g, semsim.NewLin(tax), semsim.ExactOptions{C: 0.6, MaxIterations: 10})
	if err != nil {
		panic(err)
	}
	ada, ben, eve := g.MustNode("ada"), g.MustNode("ben"), g.MustNode("eve")
	fmt.Printf("sim(ada,ben) > sim(ada,eve): %v\n",
		res.Scores.At(ada, ben) > res.Scores.At(ada, eve))
	// Output:
	// sim(ada,ben) > sim(ada,eve): true
}

// The Monte-Carlo index answers the same queries approximately.
func ExampleBuildIndex() {
	g, tax := exampleGraph()
	idx, err := semsim.BuildIndex(g, semsim.NewLin(tax), semsim.IndexOptions{
		NumWalks: 500, WalkLength: 10, C: 0.6, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	ada, ben, eve := g.MustNode("ada"), g.MustNode("ben"), g.MustNode("eve")
	fmt.Printf("estimate(ada,ben) > estimate(ada,eve): %v\n",
		idx.Query(ada, ben) > idx.Query(ada, eve))
	// Top-k over the author candidates only (the full ranking also
	// surfaces category hubs like Field).
	best := ""
	bestScore := -1.0
	for _, cand := range []semsim.NodeID{ben, eve} {
		if s := idx.Query(ada, cand); s > bestScore {
			bestScore = s
			best = g.NodeName(cand)
		}
	}
	fmt.Printf("most similar author to ada: %s\n", best)
	// Output:
	// estimate(ada,ben) > estimate(ada,eve): true
	// most similar author to ada: ben
}

// SimilarityJoin finds all pairs above a score threshold via the
// G^2_theta reduction.
func ExampleSimilarityJoin() {
	g, tax := exampleGraph()
	pairs, err := semsim.SimilarityJoin(g, semsim.NewLin(tax), 0.05,
		semsim.ReducedOptions{C: 0.6, BypassDepth: 12, MinProb: 1e-12})
	if err != nil {
		panic(err)
	}
	// The strongest pair is the two sibling fields: they share the Field
	// parent structurally and have the highest Lin similarity. (The
	// authors of this toy graph carry no taxonomy attachment, so their
	// semantic similarity — and with it their SemSim, by Prop 2.5 — is
	// near zero.)
	fmt.Printf("best pair: %s-%s (of %d pairs above 0.05)\n",
		g.NodeName(pairs[0].U), g.NodeName(pairs[0].V), len(pairs))
	// Output:
	// best pair: Databases-ML (of 1 pairs above 0.05)
}

// DecayUpperBound reports the Theorem 2.3(5) uniqueness threshold.
func ExampleDecayUpperBound() {
	g, tax := exampleGraph()
	bound := semsim.DecayUpperBound(g, semsim.NewLin(tax), 0)
	fmt.Printf("bound in (0,1]: %v\n", bound > 0 && bound <= 1)
	// Output:
	// bound in (0,1]: true
}
