// Entityresolution detects injected duplicate authors on a synthetic
// AMiner graph (the Figure 5b workload): clones share most of their
// original's neighbors, so a top-k similarity search from the original
// should surface its duplicate near the top.
package main

import (
	"fmt"
	"log"

	"semsim"
	"semsim/internal/datagen"
)

func main() {
	d, err := datagen.AMiner(datagen.AMinerConfig{Authors: 300, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	er, err := datagen.InjectDuplicates(d, 15, 0.7, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes with %d injected duplicate authors\n\n",
		er.Graph.NumNodes(), len(er.Pairs))

	// No pruning threshold here: all authors share the Author category,
	// so their pairwise semantic similarity is a small constant that a
	// performance-oriented theta would zero out (the paper makes this
	// observation about AMiner in Section 5.3).
	lin := semsim.NewLin(er.Tax)
	idx, err := semsim.BuildIndex(er.Graph, lin, semsim.IndexOptions{
		NumWalks: 400, WalkLength: 10, C: 0.6, SLINGCutoff: 0.01,
		Seed: 33, Parallel: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	found := 0
	fmt.Println("original        duplicate rank in top-10 search")
	for _, p := range er.Pairs {
		top := idx.TopK(p[0], 10)
		rank := -1
		for i, s := range top {
			if s.Node == p[1] {
				rank = i + 1
				break
			}
		}
		if rank > 0 {
			found++
			fmt.Printf("%-15s #%d\n", er.Graph.NodeName(p[0]), rank)
		} else {
			fmt.Printf("%-15s missed\n", er.Graph.NodeName(p[0]))
		}
	}
	fmt.Printf("\nresolved %d/%d duplicates in top-10 (%.0f%%)\n",
		found, len(er.Pairs), 100*float64(found)/float64(len(er.Pairs)))
}
