// Quickstart: build a tiny bibliographic network, compute SemSim both
// exactly and with the Monte-Carlo index, and compare against SimRank.
package main

import (
	"fmt"
	"log"

	"semsim"
)

func main() {
	// A small co-authorship network with a two-level field taxonomy.
	b := semsim.NewGraphBuilder()
	field := b.AddNode("Field", "category")
	db := b.AddNode("Databases", "field")
	ml := b.AddNode("MachineLearning", "field")
	authorCat := b.AddNode("Author", "category")

	isa := func(c, p semsim.NodeID) {
		b.AddEdge(c, p, "is-a", 1)
		b.AddEdge(p, c, "has-instance", 1)
	}
	isa(db, field)
	isa(ml, field)

	names := []string{"ada", "ben", "cho", "dee"}
	authors := make([]semsim.NodeID, len(names))
	for i, n := range names {
		authors[i] = b.AddNode(n, "author")
		isa(authors[i], authorCat)
	}
	// ada-ben are database people, cho-dee do ML; ben and cho once
	// collaborated.
	b.AddUndirected(authors[0], db, "interest", 2)
	b.AddUndirected(authors[1], db, "interest", 2)
	b.AddUndirected(authors[2], ml, "interest", 2)
	b.AddUndirected(authors[3], ml, "interest", 2)
	b.AddUndirected(authors[0], authors[1], "co-author", 3)
	b.AddUndirected(authors[2], authors[3], "co-author", 3)
	b.AddUndirected(authors[1], authors[2], "co-author", 1)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	tax, err := semsim.BuildTaxonomy(g, semsim.TaxonomyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	lin := semsim.NewLin(tax)

	// Thm 2.3(5)'s uniqueness bound: a decay factor below it guarantees
	// a unique fixpoint. (On tiny toy graphs the bound is conservative;
	// the iteration below converges fine with the paper's c = 0.6.)
	bound := semsim.DecayUpperBound(g, lin, 0)
	fmt.Printf("uniqueness decay bound: %.3f; using c = 0.6\n\n", bound)

	// Exact all-pairs fixpoint.
	exact, err := semsim.Exact(g, lin, semsim.ExactOptions{C: 0.6, MaxIterations: 10})
	if err != nil {
		log.Fatal(err)
	}

	// Monte-Carlo index (Algorithm 1 with pruning + SLING cache).
	idx, err := semsim.BuildIndex(g, lin, semsim.IndexOptions{
		NumWalks: 500, WalkLength: 12, C: 0.6, Theta: 0.01, SLINGCutoff: 0.1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pair            exact    MC-est   SimRank")
	pairs := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}}
	for _, p := range pairs {
		u, v := authors[p[0]], authors[p[1]]
		fmt.Printf("%-4s vs %-6s  %.4f   %.4f   %.4f\n",
			names[p[0]], names[p[1]],
			exact.Scores.At(u, v), idx.Query(u, v), idx.SimRankQuery(u, v))
	}

	fmt.Println("\ntop-3 most similar to ada:")
	for i, s := range idx.TopK(authors[0], 3) {
		fmt.Printf("%d. %-16s %.4f\n", i+1, g.NodeName(s.Node), s.Score)
	}
}
