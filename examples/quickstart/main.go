// Quickstart: build a tiny bibliographic network, compute SemSim both
// exactly and with the Monte-Carlo index, and compare against SimRank —
// with the observability layer wired in: a Trace breaks the run into
// timed phases and a Metrics registry captures query latency and cache
// behavior.
package main

import (
	"fmt"
	"log"

	"semsim"
)

func main() {
	// A small co-authorship network with a two-level field taxonomy.
	b := semsim.NewGraphBuilder()
	field := b.AddNode("Field", "category")
	db := b.AddNode("Databases", "field")
	ml := b.AddNode("MachineLearning", "field")
	authorCat := b.AddNode("Author", "category")

	isa := func(c, p semsim.NodeID) {
		b.AddEdge(c, p, "is-a", 1)
		b.AddEdge(p, c, "has-instance", 1)
	}
	isa(db, field)
	isa(ml, field)

	names := []string{"ada", "ben", "cho", "dee"}
	authors := make([]semsim.NodeID, len(names))
	for i, n := range names {
		authors[i] = b.AddNode(n, "author")
		isa(authors[i], authorCat)
	}
	// ada-ben are database people, cho-dee do ML; ben and cho once
	// collaborated.
	b.AddUndirected(authors[0], db, "interest", 2)
	b.AddUndirected(authors[1], db, "interest", 2)
	b.AddUndirected(authors[2], ml, "interest", 2)
	b.AddUndirected(authors[3], ml, "interest", 2)
	b.AddUndirected(authors[0], authors[1], "co-author", 3)
	b.AddUndirected(authors[2], authors[3], "co-author", 3)
	b.AddUndirected(authors[1], authors[2], "co-author", 1)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// The trace collects a per-phase timing breakdown (printed at the
	// end); the registry collects latency histograms and counters.
	tr := semsim.NewTrace("quickstart")
	metrics := semsim.NewMetrics()

	var tax *semsim.Taxonomy
	tr.Time("taxonomy", func() {
		tax, err = semsim.BuildTaxonomy(g, semsim.TaxonomyOptions{})
	})
	if err != nil {
		log.Fatal(err)
	}
	lin := semsim.NewLin(tax)

	// Thm 2.3(5)'s uniqueness bound: a decay factor below it guarantees
	// a unique fixpoint. (On tiny toy graphs the bound is conservative;
	// the iteration below converges fine with the paper's c = 0.6.)
	bound := semsim.DecayUpperBound(g, lin, 0)
	fmt.Printf("uniqueness decay bound: %.3f; using c = 0.6\n\n", bound)

	// Exact all-pairs fixpoint.
	var exact *semsim.ExactResult
	tr.Time("exact-fixpoint", func() {
		exact, err = semsim.Exact(g, lin, semsim.ExactOptions{C: 0.6, MaxIterations: 10})
	})
	if err != nil {
		log.Fatal(err)
	}

	// Monte-Carlo index (Algorithm 1 with pruning + SLING cache). The
	// index records its own build phases (walk-sample,
	// sling-cache-init) as sub-spans of the same trace, and its query
	// paths feed the registry. AutoPlan attaches the adaptive planner,
	// which picks a top-k strategy per query from the recorded graph and
	// walk statistics and counts its decisions in the registry.
	idx, err := semsim.BuildIndex(g, lin, semsim.IndexOptions{
		NumWalks: 500, WalkLength: 12, C: 0.6, Theta: 0.01, SLINGCutoff: 0.1, Seed: 1,
		MeetIndex: true, AutoPlan: true,
		Metrics: metrics, Trace: tr,
	})
	if err != nil {
		log.Fatal(err)
	}

	pairs := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}}
	tr.Time("queries", func() {
		fmt.Println("pair            exact    MC-est   SimRank")
		for _, p := range pairs {
			u, v := authors[p[0]], authors[p[1]]
			fmt.Printf("%-4s vs %-6s  %.4f   %.4f   %.4f\n",
				names[p[0]], names[p[1]],
				exact.Scores.At(u, v), idx.Query(u, v), idx.SimRankQuery(u, v))
		}
	})

	tr.Time("topk", func() {
		fmt.Println("\ntop-3 most similar to ada:")
		for i, s := range idx.TopK(authors[0], 3) {
			fmt.Printf("%d. %-16s %.4f\n", i+1, g.NodeName(s.Node), s.Score)
		}
	})

	// The observability readout: the per-phase trace breakdown plus a
	// few aggregates from the metrics snapshot.
	fmt.Println()
	fmt.Print(tr.String())
	snap := idx.Snapshot()
	cache := idx.CacheSummary()
	fmt.Printf("\nqueries: %d (p50 %.1fus, p99 %.1fus)   SLING cache: %.0f%% hits, %d entries\n",
		snap.Counters["semsim_queries_total"],
		snap.Histograms["semsim_query_seconds"].P50*1e6,
		snap.Histograms["semsim_query_seconds"].P99*1e6,
		100*cache.HitRatio, cache.Entries)

	// Planner decisions: one labeled counter per top-k strategy.
	fmt.Printf("backend: %s; planner decisions:", idx.Backend())
	for _, s := range []string{"brute", "sem-bounded", "collision"} {
		fmt.Printf("  %s=%d", s, snap.Counters[fmt.Sprintf("semsim_plan_total{strategy=%q}", s)])
	}
	fmt.Println()
}
