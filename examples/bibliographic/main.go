// Bibliographic reproduces the paper's worked example (Figure 1, Table 1,
// Example 2.2): who is more similar to Aditi — Bo, who shares her
// continent, or John, whose research field is semantically closer?
//
// SimRank (structure only) is reproduced on the published numbers exactly
// (R1 = 0.1 for both pairs, R2 = 0.12 vs 0.16 in Bo's favour), while
// SemSim flips the ordering to John by injecting Lin semantics.
package main

import (
	"fmt"
	"log"

	"semsim"
	"semsim/internal/paperexample"
)

func main() {
	net, err := paperexample.Build()
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph
	aditi := g.MustNode("Aditi")
	bo := g.MustNode("Bo")
	john := g.MustNode("John")

	fmt.Println("Lin scores from Table 1 / Example 2.2:")
	show := func(a, b string) {
		fmt.Printf("  Lin(%s, %s) = %.3f\n", a, b, net.Lin.Sim(g.MustNode(a), g.MustNode(b)))
	}
	show("Bo", "Aditi")
	show("John", "Aditi")
	show("SpatialCrowdsourcing", "CrowdMining")
	show("WebDataMining", "CrowdMining")

	fmt.Println("\nSimRank iterations (c = 0.8), paper values 0.1/0.1 then 0.12/0.16:")
	for k := 1; k <= 3; k++ {
		sr, err := semsim.SimRank(g, semsim.SimRankOptions{C: 0.8, MaxIterations: k})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  R%d(John,Aditi) = %.4f   R%d(Bo,Aditi) = %.4f\n",
			k, sr.Scores.At(john, aditi), k, sr.Scores.At(bo, aditi))
	}

	fmt.Println("\nSemSim iterations (c = 0.8):")
	for k := 1; k <= 3; k++ {
		ss, err := semsim.Exact(g, net.Lin, semsim.ExactOptions{C: 0.8, MaxIterations: k})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  R%d(John,Aditi) = %.6f   R%d(Bo,Aditi) = %.6f\n",
			k, ss.Scores.At(john, aditi), k, ss.Scores.At(bo, aditi))
	}

	ss, err := semsim.Exact(g, net.Lin, semsim.ExactOptions{C: 0.8, MaxIterations: 3})
	if err != nil {
		log.Fatal(err)
	}
	if ss.Scores.At(john, aditi) > ss.Scores.At(bo, aditi) {
		fmt.Println("\n=> SemSim ranks John above Bo, as the paper's Example 2.2 argues;")
		fmt.Println("   SimRank is misled by the shared continent and prefers Bo.")
	} else {
		fmt.Println("\n=> unexpected ordering; see internal/paperexample for the calibration notes")
	}
}
