// Linkprediction predicts removed co-purchase edges on a synthetic Amazon
// graph (the Figure 5a workload): remove a sample of co-purchase links,
// then check whether top-k similarity search from one endpoint recovers
// the other. SemSim's semantic signal (shared product categories) gives it
// an edge over plain SimRank.
package main

import (
	"fmt"
	"log"

	"semsim"
	"semsim/internal/datagen"
)

func main() {
	d, err := datagen.Amazon(datagen.AmazonConfig{Items: 400, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	lp, err := datagen.RemoveEdges(d, "co-purchase", 40, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; removed %d co-purchase pairs\n\n",
		lp.Train.NumNodes(), lp.Train.NumEdges(), len(lp.Removed))

	lin := semsim.NewLin(lp.Tax)
	idx, err := semsim.BuildIndex(lp.Train, lin, semsim.IndexOptions{
		NumWalks: 100, WalkLength: 10, C: 0.6, Theta: 0.05, SLINGCutoff: 0.1,
		Seed: 13, Parallel: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	items := lp.Train.NodesWithLabel("item")
	ks := []int{5, 10, 20, 50}
	hitsSem := make([]int, len(ks))
	hitsSR := make([]int, len(ks))
	rankOf := func(query func(u, v semsim.NodeID) float64, u, target semsim.NodeID) int {
		better := 0
		ts := query(u, target)
		if ts <= 0 {
			return 1 << 30
		}
		for _, v := range items {
			if v != u && query(u, v) > ts {
				better++
			}
		}
		return better
	}
	for _, p := range lp.Removed {
		rSem := rankOf(idx.Query, p[0], p[1])
		rSR := rankOf(idx.SimRankQuery, p[0], p[1])
		for i, k := range ks {
			if rSem < k {
				hitsSem[i]++
			}
			if rSR < k {
				hitsSR[i]++
			}
		}
	}

	fmt.Println("hit rate (target endpoint found in top-k):")
	fmt.Println("k      SemSim   SimRank")
	for i, k := range ks {
		fmt.Printf("%-5d  %.3f    %.3f\n", k,
			float64(hitsSem[i])/float64(len(lp.Removed)),
			float64(hitsSR[i])/float64(len(lp.Removed)))
	}
}
