// Dynamic demonstrates the repository's extensions beyond the paper's
// evaluation (its Section 7 future-work list): persisting the walk index,
// refreshing it incrementally after a graph update, and answering
// single-source queries through the inverted meeting index.
package main

import (
	"bytes"
	"fmt"
	"log"

	"semsim"
	"semsim/internal/datagen"
	"semsim/internal/hin"
	"semsim/internal/walk"
)

func main() {
	d, err := datagen.Amazon(datagen.AmazonConfig{Items: 300, Seed: 41})
	if err != nil {
		log.Fatal(err)
	}
	lin := semsim.NewLin(d.Tax)

	// Build once, persist, reload: the sampling cost is paid once.
	idx, err := semsim.BuildIndex(d.Graph, lin, semsim.IndexOptions{
		NumWalks: 150, WalkLength: 12, Theta: 0.01, SLINGCutoff: 0.1,
		Seed: 42, Parallel: true, MeetIndex: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.SaveWalks(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted walk index: %d bytes\n", buf.Len())
	reloaded, err := semsim.LoadIndex(&buf, d.Graph, lin, semsim.IndexOptions{
		Theta: 0.01, SLINGCutoff: 0.1, MeetIndex: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Single-source: every node whose walks meet item-0's, one call.
	u := d.Graph.MustNode("item-0")
	ss, err := reloaded.SingleSource(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-source from item-0: %d related nodes; top 3:\n", len(ss))
	for i, s := range reloaded.TopK(u, 3) {
		fmt.Printf("  %d. %-12s %.4f\n", i+1, d.Graph.NodeName(s.Node), s.Score)
	}

	// A new co-purchase arrives: rebuild the graph with one extra edge
	// and refresh only the invalidated walk suffixes.
	b := semsim.NewGraphBuilder()
	for v := 0; v < d.Graph.NumNodes(); v++ {
		b.AddNode(d.Graph.NodeName(semsim.NodeID(v)), d.Graph.NodeLabel(semsim.NodeID(v)))
	}
	d.Graph.Edges(func(e hin.Edge) bool {
		b.AddEdge(e.From, e.To, e.Label, e.Weight)
		return true
	})
	v99 := d.Graph.MustNode("item-99")
	b.AddUndirected(u, v99, "co-purchase", 5)
	newG, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	changed, err := hin.ChangedInNeighborhoods(d.Graph, newG)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter adding a co-purchase, %d node neighborhoods changed\n", len(changed))

	oldWalks, err := walk.Build(d.Graph, walk.Options{NumWalks: 150, Length: 12, Seed: 42, Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	refreshed, err := oldWalks.Refresh(newG, changed, 43)
	if err != nil {
		log.Fatal(err)
	}
	kept := 0
	total := 0
	for v := 0; v < newG.NumNodes(); v++ {
		for i := 0; i < 150; i++ {
			total++
			ow := oldWalks.Walk(semsim.NodeID(v), i)
			nw := refreshed.Walk(semsim.NodeID(v), i)
			same := true
			for s := range ow {
				if ow[s] != nw[s] {
					same = false
					break
				}
			}
			if same {
				kept++
			}
		}
	}
	fmt.Printf("incremental refresh preserved %d/%d walks (%.1f%%) — only suffixes through\n"+
		"the changed neighborhoods were resampled\n", kept, total, 100*float64(kept)/float64(total))
}
