// Dynamic demonstrates the mutable-index surface (the paper's Section 7
// future-work list): a live index absorbing graph churn through the
// Mutator API. Each batch of edge inserts, removals, new nodes and
// concept reweights commits as one new epoch — walks are repaired
// incrementally rather than resampled, queries never block, and a
// from-scratch rebuild of the final graph agrees with the mutated index
// within the Monte-Carlo tolerance of the walk budget.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"semsim"
	"semsim/internal/datagen"
)

const (
	numWalks = 150
	batches  = 8
)

func main() {
	d, err := datagen.Amazon(datagen.AmazonConfig{Items: 300, Seed: 41})
	if err != nil {
		log.Fatal(err)
	}
	lin := semsim.NewLin(d.Tax)
	idx, err := semsim.BuildIndex(d.Graph, lin, semsim.IndexOptions{
		NumWalks: numWalks, WalkLength: 12, Theta: 0.01, SLINGCutoff: 0.1,
		Seed: 42, Parallel: true, MeetIndex: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	u, v := d.Graph.MustNode("item-0"), d.Graph.MustNode("item-99")
	fmt.Printf("epoch %d: sim(item-0, item-99) = %.4f over %d nodes\n",
		idx.Epoch(), idx.Query(u, v), idx.Graph().NumNodes())

	// Churn: every batch stages a handful of mutations and commits them
	// atomically. Readers racing with a commit keep the previous epoch's
	// answers until the snapshot swap — never a mix of the two.
	rng := rand.New(rand.NewSource(7))
	totalResampled := 0
	for batch := 0; batch < batches; batch++ {
		g := idx.Graph()
		n := g.NumNodes()
		m := idx.NewMutator()

		// A new item arrives, wired to two random co-purchases...
		name := fmt.Sprintf("item-new-%d", batch)
		id := m.AddNode(name, "item")
		for k := 0; k < 2; k++ {
			anchor := semsim.NodeID(rng.Intn(n))
			m.AddEdge(anchor, id, "co-purchase", 1+rng.Float64())
			m.AddEdge(id, anchor, "co-purchase", 1+rng.Float64())
		}
		// ...a few co-purchases between existing nodes...
		for k := 0; k < 3; k++ {
			m.AddEdge(semsim.NodeID(rng.Intn(n)), semsim.NodeID(rng.Intn(n)),
				"co-purchase", 0.5+rng.Float64())
		}
		// ...one random existing edge churns away...
		var drop []semsim.Edge
		g.Edges(func(e semsim.Edge) bool {
			drop = append(drop, e)
			return len(drop) < 1+rng.Intn(50)
		})
		last := drop[len(drop)-1]
		m.RemoveEdge(last.From, last.To, last.Label)
		// ...and one taxonomy concept drifts in frequency.
		m.UpdateConceptFreq(semsim.NodeID(rng.Intn(n)), 0.05+0.9*rng.Float64())

		t0 := time.Now()
		st, err := m.Commit()
		if err != nil {
			log.Fatal(err)
		}
		totalResampled += st.ResampledWalks
		fmt.Printf("epoch %d: %d ops committed in %v — %d/%d walks resampled, sim(item-0, item-99) = %.4f\n",
			st.Epoch, st.Ops, time.Since(t0).Round(time.Microsecond),
			st.ResampledWalks, idx.Graph().NumNodes()*numWalks, idx.Query(u, v))
	}

	total := idx.Graph().NumNodes() * numWalks
	fmt.Printf("\nchurn complete: %d commits, ~%.1f%% of the %d walk slots resampled per commit\n",
		batches, 100*float64(totalResampled)/float64(batches)/float64(total), total)

	// The repaired index is indistinguishable from a rebuild: construct
	// a fresh index over the mutated graph and compare a few pairs.
	scratch, err := semsim.BuildIndex(idx.Graph(), idx.Sem(), semsim.IndexOptions{
		NumWalks: numWalks, WalkLength: 12, Theta: 0.01, SLINGCutoff: 0.1,
		Seed: 43, Parallel: true, MeetIndex: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	n := idx.Graph().NumNodes()
	for k := 0; k < 200; k++ {
		a, b := semsim.NodeID(rng.Intn(n)), semsim.NodeID(rng.Intn(n))
		if diff := idx.Query(a, b) - scratch.Query(a, b); diff > worst {
			worst = diff
		} else if -diff > worst {
			worst = -diff
		}
	}
	fmt.Printf("mutated index vs from-scratch rebuild: worst |diff| %.4f over 200 random pairs\n", worst)

	// New nodes are structurally first-class from the moment they
	// commit: their walks couple with the rest of the catalog (nonzero
	// SimRank). Semantically they start cold — Grow files fresh
	// instances directly under the taxonomy root, so the Lin overlap
	// with every old node is zero until a concept-frequency update
	// places them — which is exactly how an unclassified new product
	// should rank.
	g := idx.Graph()
	newest := g.MustNode(fmt.Sprintf("item-new-%d", batches-1))
	anchor := g.InNeighbors(newest)[0]
	fmt.Printf("\n%s (added at epoch %d) vs its co-purchase anchor %s:\n",
		g.NodeName(newest), batches, g.NodeName(anchor))
	fmt.Printf("  structural simrank %.4f, semantics-boosted semsim %.4f (cold: not yet classified)\n",
		idx.SimRankQuery(newest, anchor), idx.Query(newest, anchor))
}
