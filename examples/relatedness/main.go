// Relatedness evaluates measures against a WordsSim-style term-relatedness
// benchmark on a synthetic WordNet noun hierarchy (the Table 5 workload):
// human-like scores mix semantic and structural signal, so measures that
// capture only one side correlate worse than SemSim, which interweaves
// both.
package main

import (
	"fmt"
	"log"

	"semsim"
	"semsim/internal/datagen"
	"semsim/internal/eval"
)

func main() {
	d, err := datagen.WordNet(datagen.WordNetConfig{Nouns: 600, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	bm, err := datagen.WordSim(d, datagen.WordSimConfig{Pairs: 150, Seed: 22})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark: %d noun pairs with human-like relatedness scores\n\n", len(bm.Pairs))

	lin := semsim.NewLin(d.Tax)
	idx, err := semsim.BuildIndex(d.Graph, lin, semsim.IndexOptions{
		NumWalks: 150, WalkLength: 15, C: 0.6, SLINGCutoff: 0.1,
		Seed: 23, Parallel: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Quality comparisons rank with the exact fixpoint scores; the MC
	// index above answers the same queries approximately (Table 4 of the
	// paper quantifies how closely).
	exact, err := semsim.Exact(d.Graph, lin, semsim.ExactOptions{C: 0.6, MaxIterations: 10, Parallel: true})
	if err != nil {
		log.Fatal(err)
	}

	measures := []struct {
		name  string
		query func(u, v semsim.NodeID) float64
	}{
		{"SimRank (structure only)", idx.SimRankQuery},
		{"Lin (semantics only)", lin.Sim},
		{"SemSim (MC estimate)", idx.Query},
		{"SemSim (exact)", exact.Scores.At},
	}
	fmt.Println("measure                     Pearson r   p-value")
	for _, m := range measures {
		scores := make([]float64, len(bm.Pairs))
		for i, p := range bm.Pairs {
			scores[i] = m.query(p[0], p[1])
		}
		r, p, err := eval.PearsonP(scores, bm.Human)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s  %+.3f      %.2g\n", m.name, r, p)
	}
}
