# Build/test entry points. `make ci` is the full gate (see ci.sh);
# individual tiers can be run on their own.

GO ?= go

.PHONY: all build test vet race fuzz-seed fuzz bench bench-json bench-drift ci

all: build

build:
	$(GO) build ./...

# Tier 1: the fast correctness gate every change must keep green.
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Tier 2: the concurrency gate — the whole suite under the race
# detector, including the stress tests that hammer one shared cached
# Index from 8+ goroutines.
race:
	$(GO) test -race ./...

# Runs the fuzz seed corpora (testdata/fuzz + f.Add seeds) as plain
# tests — deterministic, CI-friendly.
fuzz-seed:
	$(GO) test ./internal/walk/ -run Fuzz -v
	$(GO) test ./internal/engine/conformance/ -run Fuzz -v

# Open-ended fuzzing session (not part of ci; run locally).
FUZZTIME ?= 60s
fuzz:
	$(GO) test ./internal/walk/ -fuzz FuzzLoadRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/engine/conformance/ -fuzz FuzzBackendAgreement -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench=. -benchmem ./...

# Runs the hot-path query benchmarks and records ns/op + allocs/op in
# BENCH_query.json, the machine-readable perf trajectory (compare the
# file across commits to catch regressions).
BENCH_JSON_REGEXP ?= BenchmarkQuery|BenchmarkTopK|BenchmarkSingleSource|BenchmarkBatch|BenchmarkExplainQuery
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_query.json -bench '$(BENCH_JSON_REGEXP)' -count 3 -benchtime 0.2s

# Bench drift guard (ci.sh tier 4): reruns the hot-path benchmarks and
# fails if any regressed >25% ns/op against the committed baseline.
# Minimum across -count reps on both sides damps scheduler noise; the
# baseline itself stays untouched (refresh it with `make bench-json`
# after an intentional perf change).
bench-drift:
	$(GO) run ./cmd/benchjson -compare BENCH_query.json -bench '$(BENCH_JSON_REGEXP)' -count 3 -benchtime 0.2s

ci:
	./ci.sh
