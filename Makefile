# Build/test entry points. `make ci` is the full gate (see ci.sh);
# individual tiers can be run on their own.

GO ?= go

.PHONY: all build test vet race fuzz-seed fuzz bench bench-json bench-drift ci

all: build

build:
	$(GO) build ./...

# Tier 1: the fast correctness gate every change must keep green.
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Tier 2: the concurrency gate — the whole suite under the race
# detector, including the stress tests that hammer one shared cached
# Index from 8+ goroutines.
race:
	$(GO) test -race ./...

# Runs the fuzz seed corpora (testdata/fuzz + f.Add seeds) as plain
# tests — deterministic, CI-friendly.
fuzz-seed:
	$(GO) test ./internal/walk/ -run Fuzz -v
	$(GO) test ./internal/engine/conformance/ -run Fuzz -v

# Open-ended fuzzing session (not part of ci; run locally).
FUZZTIME ?= 60s
fuzz:
	$(GO) test ./internal/walk/ -fuzz FuzzLoadRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/engine/conformance/ -fuzz FuzzBackendAgreement -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench=. -benchmem ./...

# Runs the hot-path query benchmarks and records ns/op + allocs/op in
# BENCH_query.json, the machine-readable perf trajectory (compare the
# file across commits to catch regressions).
BENCH_JSON_REGEXP ?= BenchmarkQuery|BenchmarkTopK|BenchmarkSingleSource|BenchmarkBatch|BenchmarkExplainQuery|BenchmarkCommitSmallEdit|BenchmarkLoad
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_query.json -bench '$(BENCH_JSON_REGEXP)' -count 6 -benchtime 0.2s

# Bench drift guard (ci.sh tier 4): reruns the hot-path benchmarks and
# fails on ns/op drift against the committed baseline. Minimum across
# -count reps on both sides damps scheduler noise (6 reps because
# shared-runner load phases can outlast a 3-rep run). The ns/op
# threshold is sized to the runner, not the ideal: on the single-CPU
# shared boxes this repo builds on, back-to-back runs of *unchanged*
# code swing 30-50% ns/op (load phases last minutes), so the old 25%
# bar failed on noise alone and carried no signal — 60% stays above the
# measured noise floor while still catching real hot-path regressions,
# and the allocs/op guard is exact and deterministic regardless. The
# baseline stays untouched (refresh with `make bench-json` after an
# intentional perf change); tighten BENCH_DRIFT_MAX on quieter hardware.
BENCH_DRIFT_MAX ?= 0.60
bench-drift:
	$(GO) run ./cmd/benchjson -compare BENCH_query.json -bench '$(BENCH_JSON_REGEXP)' -count 6 -benchtime 0.2s -max-regress $(BENCH_DRIFT_MAX)

ci:
	./ci.sh
