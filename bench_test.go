package semsim_test

// One benchmark per table and figure of the paper's evaluation (Section 5)
// — each wraps the corresponding internal/experiments driver at a reduced
// scale so `go test -bench=.` regenerates every result — plus
// micro-benchmarks for the individual subsystems (walk sampling, semantic
// lookups, the three single-pair query paths of Figure 4).
//
// Run everything:     go test -bench=. -benchmem
// Full-size tables:   go run ./cmd/experiments -run all [-scale paper]

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"semsim"
	"semsim/internal/datagen"
	"semsim/internal/experiments"
	"semsim/internal/hin"
	"semsim/internal/mc"
	"semsim/internal/obs"
	"semsim/internal/obs/slo"
	"semsim/internal/semantic"
	"semsim/internal/simrank"
	"semsim/internal/walk"
)

// BenchmarkFigure3Convergence regenerates the Figure 3 convergence curves.
func BenchmarkFigure3Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Convergence(experiments.ConvergenceConfig{
			Authors: 150, Items: 150, Iterations: 6, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) != 4 {
			b.Fatal("bad series count")
		}
	}
}

// BenchmarkTable3G2Reduction regenerates the Table 3 G^2 size comparison.
func BenchmarkTable3G2Reduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.G2Reduction(experiments.G2Config{
			Authors: 150, Articles: 150, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 6 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkFigure4QueryTimes regenerates the Figure 4 timing sweeps (both
// panels plus the SLING rows of Section 5.2).
func BenchmarkFigure4QueryTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.QueryTimes(experiments.QueryTimesConfig{
			Items: 200, NumWalksSweep: []int{50, 100}, LengthSweep: []int{5, 10},
			Queries: 50, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ByNumWalks) != 2 {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkTable4Accuracy regenerates the Table 4 approximation-accuracy
// statistics.
func BenchmarkTable4Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Accuracy(experiments.AccuracyConfig{
			Authors: 100, Items: 100, Pairs: 50, Runs: 5,
			NumWalks: 60, Length: 8, Seed: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Datasets) != 2 {
			b.Fatal("bad datasets")
		}
	}
}

// BenchmarkTable5Relatedness regenerates the Table 5 term-relatedness
// comparison.
func BenchmarkTable5Relatedness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Relatedness(experiments.RelatednessConfig{
			Articles: 120, Nouns: 200, Pairs: 60, NumWalks: 40, Length: 8, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows[0]) != 10 {
			b.Fatal("bad methods")
		}
	}
}

// BenchmarkFigure5aLinkPrediction regenerates the Figure 5(a) hit-rate
// curves.
func BenchmarkFigure5aLinkPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.LinkPrediction(experiments.PredictionConfig{
			Items: 150, RemovedEdges: 15, Ks: []int{5, 10},
			NumWalks: 40, Length: 6, Seed: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Curves) != 7 {
			b.Fatal("bad curves")
		}
	}
}

// BenchmarkFigure5bEntityResolution regenerates the Figure 5(b) precision
// curves.
func BenchmarkFigure5bEntityResolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.EntityResolution(experiments.PredictionConfig{
			Authors: 120, Duplicates: 10, Ks: []int{5, 10},
			NumWalks: 40, Length: 6, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Curves) != 7 {
			b.Fatal("bad curves")
		}
	}
}

// BenchmarkPreprocessing regenerates the Section 5.2 offline-cost report.
func BenchmarkPreprocessing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Preprocessing(experiments.PreprocessingConfig{
			Authors: 100, Items: 100, Articles: 100, Nouns: 200,
			NumWalks: 20, Length: 5, Seed: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatal("bad rows")
		}
	}
}

// --- Micro-benchmarks -------------------------------------------------

// benchEnv builds a shared medium graph + walk index once.
type benchEnv struct {
	d    *datagen.Dataset
	ix   *walk.Index
	est  *mc.Estimator // SemSim, no pruning
	prn  *mc.Estimator // SemSim + pruning + SLING
	prnM *mc.Estimator // SemSim + pruning + SLING + live metrics registry
	krn  *mc.Estimator // SemSim + pruning + semantic kernel + dense-warmed SLING
	kern *semantic.Kernel
	sr   *simrank.MC   // SimRank
	idx  *semsim.Index // public facade index
	idxM *semsim.Index // public facade index with metrics enabled
}

var envCache *benchEnv

func env(b *testing.B) *benchEnv {
	b.Helper()
	if envCache != nil {
		return envCache
	}
	d, err := datagen.Amazon(datagen.AmazonConfig{Items: 600, Seed: 99})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := walk.Build(d.Graph, walk.Options{NumWalks: 150, Length: 15, Seed: 1, Parallel: true})
	if err != nil {
		b.Fatal(err)
	}
	est, err := mc.New(ix, d.Lin, mc.Options{C: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	// Both striped-map caches are precomputed (the offline SLING build)
	// so every repetition of every benchmark sees the same warm cache —
	// lazy fills would charge their map growth to whichever rep first
	// visits a pair.
	cache := mc.NewSOCache(d.Graph, d.Lin, 0.1)
	cache.Precompute()
	prn, err := mc.New(ix, d.Lin, mc.Options{C: 0.6, Theta: 0.05, Cache: cache})
	if err != nil {
		b.Fatal(err)
	}
	sr, err := simrank.NewMC(ix, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	cacheM := mc.NewSOCache(d.Graph, d.Lin, 0.1)
	cacheM.Precompute()
	prnM, err := mc.New(ix, d.Lin, mc.Options{
		C: 0.6, Theta: 0.05, Cache: cacheM,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	kern, err := semantic.NewKernel(d.Lin, d.Graph.NumNodes(), semantic.KernelOptions{})
	if err != nil {
		b.Fatal(err)
	}
	kcache := mc.NewSOCache(d.Graph, kern, 0.1)
	if !kcache.EnableDense(0, 0) {
		b.Fatal("dense SO warm refused the benchmark graph")
	}
	krn, err := mc.New(ix, kern, mc.Options{C: 0.6, Theta: 0.05, Cache: kcache})
	if err != nil {
		b.Fatal(err)
	}
	// WarmCache keeps the facade benchmarks in steady state: a lazily
	// filled SLING cache charges map-growth allocations to whichever rep
	// first visits a source node, skewing the first -count repetition.
	idx, err := semsim.BuildIndex(d.Graph, d.Lin, semsim.IndexOptions{
		NumWalks: 150, WalkLength: 15, Theta: 0.05, SLINGCutoff: 0.1, Seed: 2, Parallel: true,
		WarmCache: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	idxM, err := semsim.BuildIndex(d.Graph, d.Lin, semsim.IndexOptions{
		NumWalks: 150, WalkLength: 15, Theta: 0.05, SLINGCutoff: 0.1, Seed: 2, Parallel: true,
		WarmCache: true, Metrics: semsim.NewMetrics(),
	})
	if err != nil {
		b.Fatal(err)
	}
	envCache = &benchEnv{d: d, ix: ix, est: est, prn: prn, prnM: prnM, krn: krn, kern: kern,
		sr: sr, idx: idx, idxM: idxM}
	return envCache
}

func pairAt(e *benchEnv, i int) (hin.NodeID, hin.NodeID) {
	n := e.d.Graph.NumNodes()
	return hin.NodeID(i * 7 % n), hin.NodeID((i*13 + 1) % n)
}

// BenchmarkWalkIndexBuild measures the offline walk-sampling phase.
func BenchmarkWalkIndexBuild(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix, err := walk.Build(e.d.Graph, walk.Options{NumWalks: 50, Length: 10, Seed: int64(i), Parallel: true})
		if err != nil {
			b.Fatal(err)
		}
		_ = ix
	}
}

// BenchmarkCommitSmallEdit measures the epoch-snapshot commit path for
// the smallest real mutation: a single edge toggled on and off between
// two fixed nodes. Each iteration is one full Commit — incremental walk
// repair through the touched endpoints, SO-cache invalidation and
// migration, kernel refresh and the atomic snapshot swap — so ns/op is
// the floor for mutation latency, not throughput under batching.
func BenchmarkCommitSmallEdit(b *testing.B) {
	d, err := datagen.Amazon(datagen.AmazonConfig{Items: 200, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := semsim.BuildIndex(d.Graph, d.Lin, semsim.IndexOptions{
		NumWalks: 50, WalkLength: 10, C: 0.6, Theta: 0.05,
		SLINGCutoff: 0.1, WarmCache: true, Seed: 7, MeetIndex: true,
		Workers: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	u, v := semsim.NodeID(1), semsim.NodeID(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := idx.NewMutator()
		if i%2 == 0 {
			m.AddEdge(u, v, "bench-edit", 1)
		} else {
			m.RemoveEdge(u, v, "bench-edit")
		}
		if _, err := m.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuerySimRankMC is the SimRank single-pair query of Figure 4.
func BenchmarkQuerySimRankMC(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u, v := pairAt(e, i)
		e.sr.Query(u, v)
	}
}

// BenchmarkQuerySemSimMC is the un-pruned SemSim query of Figure 4.
func BenchmarkQuerySemSimMC(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u, v := pairAt(e, i)
		e.est.Query(u, v)
	}
}

// BenchmarkQuerySemSimPrunedSLING is the pruned+cached SemSim query of
// Figure 4 (the configuration the paper reports as on par with SimRank).
// The SLING cache is precomputed at env build and the benchmark's pair
// cycle is re-queried before timing, so the numbers reflect the steady
// state, not the cold fill.
func BenchmarkQuerySemSimPrunedSLING(b *testing.B) {
	e := env(b)
	for i := 0; i < 1024; i++ {
		u, v := pairAt(e, i)
		e.prn.Query(u, v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := pairAt(e, i)
		e.prn.Query(u, v)
	}
}

// BenchmarkQuerySemSimPrunedSLINGMetrics is the same pruned+cached query
// with a live metrics registry attached — the delta against
// BenchmarkQuerySemSimPrunedSLING is the full observability overhead
// (budget: <= 2%, 0 extra allocs/op).
func BenchmarkQuerySemSimPrunedSLINGMetrics(b *testing.B) {
	e := env(b)
	for i := 0; i < 1024; i++ {
		u, v := pairAt(e, i)
		e.prnM.Query(u, v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := pairAt(e, i)
		e.prnM.Query(u, v)
	}
}

// BenchmarkQuerySemSimKernel is the tentpole configuration: pruning, the
// dense-warmed SLING SO table and the precomputed semantic kernel. Same
// workload and pairs as BenchmarkQuerySemSimPrunedSLING; scores are
// bit-identical (asserted below), only the per-step lookups change —
// sem(u,v) and SO(a,b) each become one array read.
// BenchmarkQueryCostOff / BenchmarkQueryCostOn are the cost-accounting
// overhead twins: the same warm pruned+SLING single-pair query with
// accounting disabled (nil *Cost — the production default path) and
// enabled (a reused stack accumulator, as serve threads per request).
// The bench-drift guard holds their allocation counts equal (both 0 on
// the warm path) and their latency within the drift budget, enforcing
// the "accounting is free when off, cheap when on" contract.
func BenchmarkQueryCostOff(b *testing.B) {
	e := env(b)
	for i := 0; i < 1024; i++ {
		u, v := pairAt(e, i)
		e.prn.QueryCost(u, v, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := pairAt(e, i)
		e.prn.QueryCost(u, v, nil)
	}
}

func BenchmarkQueryCostOn(b *testing.B) {
	e := env(b)
	var c obs.Cost
	for i := 0; i < 1024; i++ {
		u, v := pairAt(e, i)
		e.prn.QueryCost(u, v, &c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := pairAt(e, i)
		c = obs.Cost{}
		e.prn.QueryCost(u, v, &c)
	}
}

// BenchmarkTopKCostOn is the accounting-enabled twin of the parallel
// top-k path (worker-local accumulators merged after the join).
func BenchmarkTopKCostOn(b *testing.B) {
	e := env(b)
	n := e.d.Graph.NumNodes()
	var c obs.Cost
	e.prn.TopKCost(0, 10, &c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c = obs.Cost{}
		e.prn.TopKCost(hin.NodeID(i%n), 10, &c)
	}
}

func BenchmarkQuerySemSimKernel(b *testing.B) {
	e := env(b)
	for i := 0; i < 1024; i++ {
		u, v := pairAt(e, i)
		if got, want := e.krn.Query(u, v), e.prn.Query(u, v); got != want {
			b.Fatalf("kernel path diverged at pair %d: %v != %v", i, got, want)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := pairAt(e, i)
		e.krn.Query(u, v)
	}
}

// BenchmarkKernelBuild measures the offline kernel construction (concept
// classing + dense concept-pair matrix fill) on the benchmark taxonomy.
func BenchmarkKernelBuild(b *testing.B) {
	e := env(b)
	n := e.d.Graph.NumNodes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := semantic.NewKernel(e.d.Lin, n, semantic.KernelOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSOCacheDenseWarm measures the offline dense SO-table warm
// (every pair probed, sem >= cutoff pairs materialized).
func BenchmarkSOCacheDenseWarm(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := mc.NewSOCache(e.d.Graph, e.kern, 0.1)
		if !c.EnableDense(0, 0) {
			b.Fatal("dense warm refused")
		}
	}
}

// BenchmarkLinLookup measures the constant-time semantic similarity the
// complexity analysis assumes (taxonomy IC + O(1) LCA).
func BenchmarkLinLookup(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u, v := pairAt(e, i)
		e.d.Lin.Sim(u, v)
	}
}

// BenchmarkLCAQuery measures the Euler-tour sparse-table LCA.
func BenchmarkLCAQuery(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u, v := pairAt(e, i)
		e.d.Tax.LCA(int32(u), int32(v))
	}
}

// BenchmarkTopK10 measures the public-facade top-10 similarity search.
// The index is built with WarmCache (steady state from the first rep);
// one warm search still runs before the timer to settle any remaining
// lazy initialization.
func BenchmarkTopK10(b *testing.B) {
	e := env(b)
	e.idx.TopK(0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, _ := pairAt(e, i)
		e.idx.TopK(u, 10)
	}
}

// BenchmarkTopK10Metrics is the instrumented twin of BenchmarkTopK10:
// top-k scan loops use the uninstrumented internal query path, so only
// the per-search aggregates are recorded.
func BenchmarkTopK10Metrics(b *testing.B) {
	e := env(b)
	e.idxM.TopK(0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, _ := pairAt(e, i)
		e.idxM.TopK(u, 10)
	}
}

// --- Capacity benchmarks (v3 walk format, lazy residency) ------------

// writeBenchWalks serializes the shared walk index into a temp v3 file
// for the lazy-residency benchmarks.
func writeBenchWalks(b *testing.B, e *benchEnv) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), "walks.v3")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.ix.WriteTo(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkQueryCold is the lazy-residency query path under cache
// pressure: the walk file is opened demand-paged with a block-cache
// budget far below the decoded index size, so queries keep faulting
// blocks through decode + eviction. Compare against
// BenchmarkQuerySemSimMC (same estimator configuration, fully resident)
// for the price of serving an index that does not fit in RAM.
func BenchmarkQueryCold(b *testing.B) {
	e := env(b)
	lazy, err := walk.OpenLazyFile(writeBenchWalks(b, e), e.d.Graph,
		walk.LazyOptions{CacheBytes: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer lazy.Close()
	est, err := mc.New(lazy, e.d.Lin, mc.Options{C: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := pairAt(e, i)
		est.Query(u, v)
	}
	if n := lazy.DecodeErrors(); n != 0 {
		b.Fatalf("%d decode errors: %v", n, lazy.LastDecodeErr())
	}
}

// BenchmarkLoadV3 measures the full (resident) load of a v3 walk file —
// the process-restart cost SaveWalks exists to amortize. MB/s is
// against the compressed on-disk size.
func BenchmarkLoadV3(b *testing.B) {
	e := env(b)
	var buf bytes.Buffer
	if _, err := e.ix.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := walk.Load(bytes.NewReader(buf.Bytes()), e.d.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Estimate-quality benchmarks -------------------------------------

// shadowEnv holds the shadow-overhead twin indexes. They live on a
// smaller AMiner graph than the main benchEnv because the shadow-on
// index builds an exact reference backend at construction — affordable
// here, hours on the Amazon graph's retained pair set. The smaller
// graph also makes the comparison conservative: queries are cheaper, so
// the fixed per-query shadow cost is a larger fraction of ns/op.
type shadowEnv struct {
	off *semsim.Index // instrumented, shadow disabled
	on  *semsim.Index // identical, shadow verifier at 1/256
	n   int
}

var shadowEnvCache *shadowEnv

func shadowTwins(b *testing.B) *shadowEnv {
	b.Helper()
	if shadowEnvCache != nil {
		return shadowEnvCache
	}
	d, err := datagen.AMiner(datagen.AMinerConfig{Authors: 150, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	opts := semsim.IndexOptions{
		NumWalks: 150, WalkLength: 15, Theta: 0.05, SLINGCutoff: 0.1, Seed: 3, Parallel: true,
		WarmCache: true,
	}
	opts.Metrics = semsim.NewMetrics()
	off, err := semsim.BuildIndex(d.Graph, d.Lin, opts)
	if err != nil {
		b.Fatal(err)
	}
	opts.Metrics = semsim.NewMetrics()
	opts.ShadowRate = 256
	opts.ShadowBackend = "exact"
	opts.ShadowQueue = 4096
	on, err := semsim.BuildIndex(d.Graph, d.Lin, opts)
	if err != nil {
		b.Fatal(err)
	}
	shadowEnvCache = &shadowEnv{off: off, on: on, n: d.Graph.NumNodes()}
	return shadowEnvCache
}

// BenchmarkQueryShadowOff / BenchmarkQueryShadowSampled are the shadow
// overhead twins: identical instrumented facade indexes, the second with
// the shadow verifier sampling 1 in 256 queries onto a background
// worker. The budget is <= 2% ns/op and 0 allocs/op delta — the hot
// path pays one atomic counter and, every 256th call, one value-struct
// channel send.

func BenchmarkQueryShadowOff(b *testing.B) {
	e := shadowTwins(b)
	for i := 0; i < 1024; i++ {
		e.off.Query(hin.NodeID(i*7%e.n), hin.NodeID((i*13+1)%e.n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.off.Query(hin.NodeID(i*7%e.n), hin.NodeID((i*13+1)%e.n))
	}
}

func BenchmarkQueryShadowSampled(b *testing.B) {
	e := shadowTwins(b)
	for i := 0; i < 1024; i++ {
		e.on.Query(hin.NodeID(i*7%e.n), hin.NodeID((i*13+1)%e.n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.on.Query(hin.NodeID(i*7%e.n), hin.NodeID((i*13+1)%e.n))
	}
}

// linearEnv holds an index on the "linear" backend: same small AMiner
// graph as the shadow twins (the backend's solve state is O(n^2), so the
// 150-author graph keeps construction and memory modest) with the meet
// index on, so SingleSource exercises the solved-matrix row scan.
type linearBenchEnv struct {
	idx *semsim.Index
	n   int
}

var linearEnvCache *linearBenchEnv

func linearEnv(b *testing.B) *linearBenchEnv {
	b.Helper()
	if linearEnvCache != nil {
		return linearEnvCache
	}
	d, err := datagen.AMiner(datagen.AMinerConfig{Authors: 150, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := semsim.BuildIndex(d.Graph, d.Lin, semsim.IndexOptions{
		NumWalks: 150, WalkLength: 15, Theta: 0.05, Seed: 3, Parallel: true,
		MeetIndex: true, Backend: "linear",
	})
	if err != nil {
		b.Fatal(err)
	}
	linearEnvCache = &linearBenchEnv{idx: idx, n: d.Graph.NumNodes()}
	return linearEnvCache
}

// BenchmarkQueryLinear / BenchmarkSingleSourceLinear measure the linear
// backend's query path: the Gauss-Seidel solve runs once at build, so a
// query is one triangular-matrix read and single-source one row scan —
// the floor the sampling backends' per-query walk scoring compares
// against.

func BenchmarkQueryLinear(b *testing.B) {
	e := linearEnv(b)
	for i := 0; i < 1024; i++ {
		e.idx.Query(hin.NodeID(i*7%e.n), hin.NodeID((i*13+1)%e.n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.idx.Query(hin.NodeID(i*7%e.n), hin.NodeID((i*13+1)%e.n))
	}
}

func BenchmarkSingleSourceLinear(b *testing.B) {
	e := linearEnv(b)
	if _, err := e.idx.SingleSource(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.idx.SingleSource(hin.NodeID(i * 7 % e.n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExplainQuery measures the /explain evidence path against
// BenchmarkQuerySemSimPrunedSLINGMetrics (same graph, same pairs, same
// instrumented configuration): the delta is the cost of recording
// per-step meeting counts and the CLT/skewness statistics, plus the
// Explanation allocation itself. Explaining is per-request opt-in, so
// this cost is only paid when asked for.
func BenchmarkExplainQuery(b *testing.B) {
	e := env(b)
	n := e.d.Graph.NumNodes()
	for i := 0; i < 1024; i++ {
		e.idxM.Query(hin.NodeID(i*7%n), hin.NodeID((i*13+1)%n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := pairAt(e, i)
		if _, err := e.idxM.ExplainQuery(u, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSemSimExactIterative measures one full iterative solve on a
// small graph (the ground-truth path of Tables 4/5).
func BenchmarkSemSimExactIterative(b *testing.B) {
	d, err := datagen.AMiner(datagen.AMinerConfig{Authors: 150, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := semsim.Exact(d.Graph, d.Lin, semsim.ExactOptions{C: 0.6, MaxIterations: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecayUpperBound measures the Theorem 2.3(5) bound scan
// (sampled).
func BenchmarkDecayUpperBound(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		semsim.DecayUpperBound(e.d.Graph, e.d.Lin, 2000)
	}
}

// BenchmarkAblation regenerates the design-choice ablation tables
// (definition ingredients + pruning threshold sweep).
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(experiments.AblationConfig{
			Nouns: 150, Pairs: 50, Items: 120, QueryPairs: 40, Seed: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Variants) != 5 {
			b.Fatal("bad variants")
		}
	}
}

// BenchmarkTopK10MeetIndex measures collision-driven top-10 search (the
// single-source path) for comparison with BenchmarkTopK10.
func BenchmarkTopK10MeetIndex(b *testing.B) {
	e := env(b)
	meet := walk.BuildMeetIndex(e.ix)
	e.prn.TopKWithIndex(0, 10, meet)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, _ := pairAt(e, i)
		e.prn.TopKWithIndex(u, 10, meet)
	}
}

// BenchmarkTopK10SemBounded measures the Prop 2.5 early-terminated top-10
// search.
func BenchmarkTopK10SemBounded(b *testing.B) {
	e := env(b)
	e.prn.TopKSemBounded(0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, _ := pairAt(e, i)
		e.prn.TopKSemBounded(u, 10)
	}
}

// BenchmarkSingleSource measures full single-source enumeration via the
// inverted meeting index.
func BenchmarkSingleSource(b *testing.B) {
	e := env(b)
	meet := walk.BuildMeetIndex(e.ix)
	e.prn.SingleSource(0, meet)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, _ := pairAt(e, i)
		e.prn.SingleSource(u, meet)
	}
}

// BenchmarkMeetIndexBuild measures the inverted-index construction.
func BenchmarkMeetIndexBuild(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		walk.BuildMeetIndex(e.ix)
	}
}

// BenchmarkBatchQueryParallel measures concurrent batched queries.
func BenchmarkBatchQueryParallel(b *testing.B) {
	e := env(b)
	n := e.d.Graph.NumNodes()
	pairs := make([][2]hin.NodeID, 512)
	for i := range pairs {
		pairs[i] = [2]hin.NodeID{hin.NodeID(i * 3 % n), hin.NodeID((i*11 + 2) % n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.BatchQuery(e.ix, e.d.Lin, mc.Options{C: 0.6, Theta: 0.05,
			Cache: mc.NewSOCache(e.d.Graph, e.d.Lin, 0.1)}, pairs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Concurrency benchmarks ------------------------------------------
//
// The serial/parallel pairs below quantify the shared-cache concurrent
// query engine: one cached Index serves all goroutines (RunParallel uses
// GOMAXPROCS workers). Compare ns/op of BenchmarkQueryParallel against
// BenchmarkQuerySerialBaseline for the throughput multiple.

// queryIndex builds the cached index the concurrency benchmarks share.
func queryIndex(b *testing.B) (*semsim.Index, int) {
	b.Helper()
	e := env(b)
	return e.idx, e.d.Graph.NumNodes()
}

// BenchmarkQuerySerialBaseline is the single-goroutine reference for
// BenchmarkQueryParallel, on the same cached index.
func BenchmarkQuerySerialBaseline(b *testing.B) {
	idx, n := queryIndex(b)
	for i := 0; i < 1024; i++ {
		idx.Query(hin.NodeID(i*7%n), hin.NodeID((i*13+1)%n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := hin.NodeID(i*7%n), hin.NodeID((i*13+1)%n)
		idx.Query(u, v)
	}
}

// BenchmarkQueryParallel drives concurrent single-pair queries through
// one shared Index and SLING cache. On a multi-core runner throughput
// should scale with GOMAXPROCS (>= 2x the serial baseline) because the
// hot path takes no locks beyond the cache's read-mostly stripes.
func BenchmarkQueryParallel(b *testing.B) {
	idx, n := queryIndex(b)
	for i := 0; i < 1024; i++ {
		idx.Query(hin.NodeID(i*7%n), hin.NodeID((i*13+1)%n))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			u, v := hin.NodeID(i*7%n), hin.NodeID((i*13+1)%n)
			idx.Query(u, v)
			i++
		}
	})
}

// BenchmarkTopK10Parallel measures concurrent top-10 searches sharing
// one index (each TopK additionally fans its candidate scan across the
// internal pool).
func BenchmarkTopK10Parallel(b *testing.B) {
	idx, n := queryIndex(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			idx.TopK(hin.NodeID(i*7%n), 10)
			i++
		}
	})
}

// BenchmarkBatchQuerySharedCache measures the reworked batch path: all
// workers share the index's estimator and cache (contrast with
// BenchmarkBatchQueryParallel, which reconstructs caches per call).
func BenchmarkBatchQuerySharedCache(b *testing.B) {
	idx, n := queryIndex(b)
	pairs := make([][2]hin.NodeID, 512)
	for i := range pairs {
		pairs[i] = [2]hin.NodeID{hin.NodeID(i * 3 % n), hin.NodeID((i*11 + 2) % n)}
	}
	if _, err := idx.BatchQuery(pairs, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.BatchQuery(pairs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// planIndexCache is built lazily on top of the shared dataset: meet
// index plus the adaptive planner, for comparing planner-routed top-k
// against the caller-chosen variants above.
var planIndexCache *semsim.Index

func planIndex(b *testing.B) (*semsim.Index, int) {
	b.Helper()
	e := env(b)
	if planIndexCache == nil {
		idx, err := semsim.BuildIndex(e.d.Graph, e.d.Lin, semsim.IndexOptions{
			NumWalks: 150, WalkLength: 15, Theta: 0.05, SLINGCutoff: 0.1, Seed: 2, Parallel: true,
			MeetIndex: true, AutoPlan: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		planIndexCache = idx
	}
	return planIndexCache, e.d.Graph.NumNodes()
}

// BenchmarkTopK10AutoPlan measures top-10 search with the adaptive
// planner choosing the strategy per query; compare against
// BenchmarkTopK10 (brute), BenchmarkTopK10MeetIndex (collision) and
// BenchmarkTopK10SemBounded (sem-bounded) to see the routing overhead
// (it should be within noise of whichever strategy the planner picks).
func BenchmarkTopK10AutoPlan(b *testing.B) {
	idx, n := planIndex(b)
	idx.TopK(0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.TopK(hin.NodeID(i*7%n), 10)
	}
}

// BenchmarkIndexRefresh measures incremental walk maintenance after a
// single-node in-neighborhood change.
func BenchmarkIndexRefresh(b *testing.B) {
	e := env(b)
	changed := []hin.NodeID{hin.NodeID(7)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.ix.Refresh(e.d.Graph, changed, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuerySLOOff / BenchmarkQuerySLOTracked are the serving-SLO
// overhead twins: the same facade query with the per-request SLO
// observation the serve wrap layer adds — first against a nil tracker
// (the disabled state, a single nil check), then against a live
// multi-window tracker. The budget is <= 2% ns/op and 0 allocs/op
// delta: Observe is one clock read, one slot index and four atomic
// adds.

func BenchmarkQuerySLOOff(b *testing.B) {
	e := shadowTwins(b)
	var tracker *slo.Tracker
	for i := 0; i < 1024; i++ {
		e.off.Query(hin.NodeID(i*7%e.n), hin.NodeID((i*13+1)%e.n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		e.off.Query(hin.NodeID(i*7%e.n), hin.NodeID((i*13+1)%e.n))
		tracker.Observe(time.Since(t0), false)
	}
}

func BenchmarkQuerySLOTracked(b *testing.B) {
	e := shadowTwins(b)
	tracker := slo.New(slo.Config{
		Objective:        0.99,
		LatencyThreshold: 50 * time.Millisecond,
	}, nil)
	if tracker == nil {
		b.Fatal("tracker did not arm")
	}
	for i := 0; i < 1024; i++ {
		e.off.Query(hin.NodeID(i*7%e.n), hin.NodeID((i*13+1)%e.n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		e.off.Query(hin.NodeID(i*7%e.n), hin.NodeID((i*13+1)%e.n))
		tracker.Observe(time.Since(t0), false)
	}
}
